"""Query sets, managers and lookup parsing.

A :class:`QuerySet` is *lazy*: chainable operations only accumulate a
declarative description (model, lookups, ordering) and never touch storage.
Terminal operations (iteration, ``get``, ``count``, ``update``, ``delete``,
...) hand the description to the **current execution backend**
(:mod:`repro.orm.runtime`).  The default backend executes concretely
against the in-memory database; the Noctua analyzer installs a *symbolic*
backend instead, so unmodified application code emits SOIR when run under
analysis — the paper's framework-integrated analyzer design (§4.1).

Because SQL (here: SOIR) is constructed dynamically and lazily from these
descriptions, nothing about the database interaction is visible statically
— the realistic property that defeats tools like Rigi (paper §1, C1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from ..soir.types import Comparator, Direction, DRelation
from . import runtime
from .exceptions import FieldError
from .fields import RelationField

#: Django lookup suffix -> SOIR comparator.
LOOKUP_OPS: dict[str, Comparator] = {
    "exact": Comparator.EQ,
    "ne": Comparator.NE,
    "gt": Comparator.GT,
    "gte": Comparator.GE,
    "lt": Comparator.LT,
    "lte": Comparator.LE,
    "contains": Comparator.CONTAINS,
    "icontains": Comparator.CONTAINS,
    "startswith": Comparator.STARTSWITH,
    "in": Comparator.IN,
    "isnull": Comparator.ISNULL,
}

#: Complement used by ``exclude`` (only plain-field lookups support it).
_COMPLEMENT: dict[Comparator, Comparator] = {
    Comparator.EQ: Comparator.NE,
    Comparator.NE: Comparator.EQ,
    Comparator.LT: Comparator.GE,
    Comparator.GE: Comparator.LT,
    Comparator.GT: Comparator.LE,
    Comparator.LE: Comparator.GT,
}


@dataclass(frozen=True)
class Lookup:
    """One parsed filter criterion.

    ``relpath`` is the chain of relation hops (SOIR ``DRelation``), ``field``
    the terminal column on the model reached by the path, ``op`` the SOIR
    comparator and ``value`` the (concrete or symbolic) comparand.
    """

    relpath: tuple[DRelation, ...]
    field: str
    op: Comparator
    value: Any


def is_object_like(value: Any) -> bool:
    """Model instances and the analyzer's symbolic objects."""
    return getattr(value, "__soir_object__", False)


def parse_lookup(model: type, key: str, value: Any) -> Lookup:
    """Parse a Django-style lookup key against live model metadata.

    Handles relation chains (``article__author__name``), reverse accessors,
    ``<fk>_id`` shortcuts, the ``pk`` alias, operator suffixes and the
    ``field=None`` / ``field__isnull`` null checks.
    """
    segments = key.split("__")
    current = model
    relpath: list[DRelation] = []
    fieldname: str | None = None
    op_name: str | None = None

    i = 0
    while i < len(segments):
        seg = segments[i]
        meta = current._meta
        if seg == "pk":
            seg = meta.pk.name
        rel = _forward_relation(meta, seg)
        if rel is not None and fieldname is None:
            relpath.append(DRelation(rel.relation_name(), Direction.FORWARD))
            current = current._registry.get_model(rel.target_name())
            i += 1
            continue
        reverse = meta.reverse_relations.get(seg)
        if reverse is not None and fieldname is None:
            relpath.append(
                DRelation(reverse.relation_name(), Direction.BACKWARD)
            )
            current = reverse.model
            i += 1
            continue
        if (
            fieldname is None
            and seg.endswith("_id")
            and _forward_relation(meta, seg[:-3]) is not None
        ):
            rel = _forward_relation(meta, seg[:-3])
            relpath.append(DRelation(rel.relation_name(), Direction.FORWARD))
            current = current._registry.get_model(rel.target_name())
            fieldname = current._meta.pk.name
            i += 1
            continue
        if fieldname is None and any(f.name == seg for f in meta.columns):
            fieldname = seg
            i += 1
            continue
        if op_name is None and seg in LOOKUP_OPS and (fieldname is not None or relpath):
            if fieldname is None:
                # ``author__isnull=True`` — operate on the terminal pk.
                fieldname = current._meta.pk.name
            op_name = seg
            i += 1
            continue
        raise FieldError(f"cannot resolve lookup {key!r} at segment {seg!r}")

    if fieldname is None:
        # Pure relation lookup: ``filter(author=user)`` — compare the pk of
        # the object at the end of the path.
        fieldname = current._meta.pk.name

    if op_name == "isnull":
        return Lookup(tuple(relpath), fieldname, Comparator.ISNULL, bool(value))

    op = LOOKUP_OPS[op_name] if op_name else Comparator.EQ
    if value is None and op == Comparator.EQ:
        return Lookup(tuple(relpath), fieldname, Comparator.ISNULL, True)
    if is_object_like(value):
        value = value.pk
    elif op == Comparator.IN and isinstance(value, (list, tuple, set)):
        value = tuple(v.pk if is_object_like(v) else v for v in value)
    return Lookup(tuple(relpath), fieldname, op, value)


def _forward_relation(meta, name: str) -> RelationField | None:
    for rel in meta.relations:
        if rel.name == name:
            return rel
    return None


@dataclass(frozen=True)
class QuerySet:
    """A lazy, immutable query description over ``model``."""

    model: type
    lookups: tuple[Lookup, ...] = ()
    order_fields: tuple[str, ...] = ()
    is_reversed: bool = False

    # -- chainable (lazy) ------------------------------------------------

    def filter(self, **kwargs) -> "QuerySet":
        new = tuple(parse_lookup(self.model, k, v) for k, v in kwargs.items())
        return replace(self, lookups=self.lookups + new)

    def exclude(self, **kwargs) -> "QuerySet":
        """Negated filter.  Supported for plain-column lookups only (the
        negation of a relation-path match is not expressible as a SOIR
        filter; the analyzer treats such code conservatively)."""
        negated = []
        for k, v in kwargs.items():
            lk = parse_lookup(self.model, k, v)
            if lk.op == Comparator.ISNULL:
                # Null-ness flips cleanly even across a relation path.
                negated.append(replace(lk, value=not lk.value))
                continue
            if lk.relpath:
                raise FieldError(
                    f"exclude() across relations is unsupported: {k!r}"
                )
            if lk.op in _COMPLEMENT:
                negated.append(replace(lk, op=_COMPLEMENT[lk.op]))
            else:
                raise FieldError(f"exclude() cannot negate lookup {k!r}")
        return replace(self, lookups=self.lookups + tuple(negated))

    def all(self) -> "QuerySet":
        return self

    def order_by(self, *fields: str) -> "QuerySet":
        return replace(self, order_fields=tuple(fields), is_reversed=False)

    def reverse(self) -> "QuerySet":
        return replace(self, is_reversed=not self.is_reversed)

    # -- terminal --------------------------------------------------------

    def __iter__(self) -> Iterator:
        return iter(runtime.backend().fetch(self))

    def __len__(self) -> int:
        return len(runtime.backend().fetch(self))

    def __getitem__(self, index):
        return runtime.backend().fetch(self)[index]

    def __bool__(self) -> bool:
        return bool(runtime.backend().exists(self))

    def get(self, **kwargs):
        qs = self.filter(**kwargs) if kwargs else self
        return runtime.backend().get(qs)

    def first(self):
        return runtime.backend().first(self)

    def last(self):
        return runtime.backend().last(self)

    def exists(self):
        return runtime.backend().exists(self)

    def count(self):
        return runtime.backend().count(self)

    def sum(self, field_name: str):
        return runtime.backend().aggregate(self, "sum", field_name)

    def avg(self, field_name: str):
        return runtime.backend().aggregate(self, "avg", field_name)

    def max(self, field_name: str):
        return runtime.backend().aggregate(self, "max", field_name)

    def min(self, field_name: str):
        return runtime.backend().aggregate(self, "min", field_name)

    def update(self, **kwargs) -> None:
        runtime.backend().update_qs(self, kwargs)

    def delete(self) -> None:
        runtime.backend().delete_qs(self)

    def earliest(self, field_name: str):
        """The object with the smallest ``field_name`` (Django semantics:
        raises ``DoesNotExist`` when empty)."""
        found = self.order_by(field_name).first()
        # Truthiness (not `is None`) so the emptiness check is a symbolic
        # branch under analysis, yielding the existence precondition.
        if not found:
            raise self.model.DoesNotExist(
                f"{self.model.__name__}.earliest({field_name!r})"
            )
        return found

    def latest(self, field_name: str):
        """The object with the greatest ``field_name``."""
        found = self.order_by(field_name).last()
        if not found:
            raise self.model.DoesNotExist(
                f"{self.model.__name__}.latest({field_name!r})"
            )
        return found

    def values_list(self, field_name: str, flat: bool = True) -> list:
        """Simplified ``values_list``: one flat column."""
        return [getattr(obj, field_name) for obj in self]


class Manager:
    """``Model.objects``."""

    def __init__(self, model: type):
        self.model = model

    def _qs(self) -> QuerySet:
        return QuerySet(self.model)

    def all(self) -> QuerySet:
        return self._qs()

    def filter(self, **kwargs) -> QuerySet:
        return self._qs().filter(**kwargs)

    def exclude(self, **kwargs) -> QuerySet:
        return self._qs().exclude(**kwargs)

    def order_by(self, *fields) -> QuerySet:
        return self._qs().order_by(*fields)

    def get(self, **kwargs):
        return self._qs().get(**kwargs)

    def create(self, **kwargs):
        return runtime.backend().create(self.model, kwargs)

    def get_or_create(self, defaults: dict | None = None, **kwargs):
        """Returns ``(object, created)``."""
        try:
            return self.get(**kwargs), False
        except self.model.DoesNotExist:
            params = dict(kwargs)
            params.update(defaults or {})
            return self.create(**params), True

    def update_or_create(self, defaults: dict | None = None, **kwargs):
        """Returns ``(object, created)``: update the match or create it."""
        defaults = defaults or {}
        try:
            obj = self.get(**kwargs)
        except self.model.DoesNotExist:
            params = dict(kwargs)
            params.update(defaults)
            return self.create(**params), True
        for key, value in defaults.items():
            setattr(obj, key, value)
        obj.save()
        return obj, False

    def bulk_create(self, objs) -> list:
        """Insert a (concrete, finite) batch of unsaved instances.

        Under analysis the batch length is known (it is a Python list), so
        this stays within SOIR's finite-commands restriction (§3.3)."""
        for obj in objs:
            runtime.backend().save_instance(obj)
        return list(objs)

    def earliest(self, field_name: str):
        return self._qs().earliest(field_name)

    def latest(self, field_name: str):
        return self._qs().latest(field_name)

    def count(self) -> int:
        return self._qs().count()

    def exists(self):
        return self._qs().exists()

    def first(self):
        return self._qs().first()

    def last(self):
        return self._qs().last()


class RelatedManager:
    """Reverse accessor for a ForeignKey: ``user.article_set``."""

    def __init__(self, instance, rel: RelationField):
        self.instance = instance
        self.rel = rel
        self.model = rel.model  # the relation's *source* model

    def _qs(self) -> QuerySet:
        hop = DRelation(self.rel.relation_name(), Direction.FORWARD)
        target_pk = self.instance._meta.pk.name
        lookup = Lookup((hop,), target_pk, Comparator.EQ, self.instance.pk)
        return QuerySet(self.model, (lookup,))

    def all(self) -> QuerySet:
        return self._qs()

    def filter(self, **kwargs) -> QuerySet:
        return self._qs().filter(**kwargs)

    def get(self, **kwargs):
        return self._qs().get(**kwargs)

    def count(self):
        return self._qs().count()

    def exists(self):
        return self._qs().exists()

    def first(self):
        return self._qs().first()

    def last(self):
        return self._qs().last()

    def __iter__(self):
        return iter(self._qs())

    def create(self, **kwargs):
        kwargs[self.rel.name] = self.instance
        return runtime.backend().create(self.model, kwargs)

    def add(self, obj) -> None:
        runtime.backend().link(self.rel, obj, self.instance)

    def remove(self, obj) -> None:
        if not self.rel.null:
            raise FieldError(
                f"cannot remove from non-nullable relation {self.rel.relation_name()}"
            )
        runtime.backend().delink(self.rel, obj, self.instance)

    def clear(self) -> None:
        if self.rel.kind == "fk" and not self.rel.null:
            raise FieldError(
                f"cannot clear non-nullable relation {self.rel.relation_name()}"
            )
        runtime.backend().clearlinks(self.rel, self.instance, end="target")


class M2MManager:
    """Forward accessor for a ManyToManyField: ``article.tags``."""

    def __init__(self, instance, rel: RelationField):
        self.instance = instance
        self.rel = rel

    def _target(self) -> type:
        return self.instance._registry.get_model(self.rel.target_name())

    def _qs(self) -> QuerySet:
        hop = DRelation(self.rel.relation_name(), Direction.BACKWARD)
        src_pk = self.instance._meta.pk.name
        lookup = Lookup((hop,), src_pk, Comparator.EQ, self.instance.pk)
        return QuerySet(self._target(), (lookup,))

    def all(self) -> QuerySet:
        return self._qs()

    def filter(self, **kwargs) -> QuerySet:
        return self._qs().filter(**kwargs)

    def count(self):
        return self._qs().count()

    def exists(self):
        return self._qs().exists()

    def __iter__(self):
        return iter(self._qs())

    def add(self, *objs) -> None:
        for obj in objs:
            runtime.backend().link(self.rel, self.instance, obj)

    def remove(self, *objs) -> None:
        for obj in objs:
            runtime.backend().delink(self.rel, self.instance, obj)

    def clear(self) -> None:
        runtime.backend().clearlinks(self.rel, self.instance, end="source")

    def set(self, objs) -> None:
        self.clear()
        self.add(*objs)


class ReverseRelatedDescriptor:
    """Installed on a relation's *target* class by the registry."""

    def __init__(self, rel: RelationField, accessor: str):
        self.rel = rel
        self.accessor = accessor

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        if self.rel.kind == "m2m":
            return ReverseM2MManager(instance, self.rel)
        return RelatedManager(instance, self.rel)


class ReverseM2MManager:
    """Reverse accessor for a ManyToManyField (from the target side)."""

    def __init__(self, instance, rel: RelationField):
        self.instance = instance
        self.rel = rel

    def _qs(self) -> QuerySet:
        hop = DRelation(self.rel.relation_name(), Direction.FORWARD)
        target_pk = self.instance._meta.pk.name
        lookup = Lookup((hop,), target_pk, Comparator.EQ, self.instance.pk)
        return QuerySet(self.rel.model, (lookup,))

    def all(self) -> QuerySet:
        return self._qs()

    def filter(self, **kwargs) -> QuerySet:
        return self._qs().filter(**kwargs)

    def count(self):
        return self._qs().count()

    def __iter__(self):
        return iter(self._qs())

    def add(self, *objs) -> None:
        for obj in objs:
            runtime.backend().link(self.rel, obj, self.instance)

    def remove(self, *objs) -> None:
        for obj in objs:
            runtime.backend().delink(self.rel, obj, self.instance)

    def clear(self) -> None:
        runtime.backend().clearlinks(self.rel, self.instance, end="target")
