"""Model base class and metaclass.

Models are declared exactly as in Django (paper Figure 3)::

    class Article(Model):
        url = TextField(unique=True)
        author = ForeignKey(User, on_delete=SET_NULL, null=True)
        title = TextField()
        created = DateTimeField(default=clock.now)

The metaclass is deliberately *dynamic*: fields are inherited through
arbitrary mixins and abstract bases (collected along the MRO at class
creation), reverse accessors are installed onto other classes at runtime,
and the model registers itself into the active :class:`Registry`.  None of
this structure is recoverable by a static analyzer — which is precisely
challenge (C1) the paper's embedded analyzer addresses.
"""

from __future__ import annotations

from typing import Any

from . import runtime
from .exceptions import FieldError, MultipleObjectsReturned, ObjectDoesNotExist
from .fields import AutoField, Field, ManyToManyField, RelationField
from .query import Manager, M2MManager
from .registry import Registry


class Options:
    """Per-model metadata (Django's ``Model._meta``)."""

    def __init__(self, model: type, meta_cls: type | None):
        self.model = model
        self.columns: list[Field] = []
        self.relations: list[RelationField] = []
        self.reverse_relations: dict[str, RelationField] = {}
        self.abstract = bool(getattr(meta_cls, "abstract", False))
        self.unique_together = _normalize_unique_together(
            getattr(meta_cls, "unique_together", ())
        )
        self.ordering: tuple[str, ...] = tuple(getattr(meta_cls, "ordering", ()))
        self.pk: Field | None = None

    def column(self, name: str) -> Field:
        for f in self.columns:
            if f.name == name:
                return f
        raise FieldError(f"{self.model.__name__} has no column {name!r}")

    def relation(self, name: str) -> RelationField:
        for r in self.relations:
            if r.name == name:
                return r
        raise FieldError(f"{self.model.__name__} has no relation {name!r}")

    def fk_relations(self) -> list[RelationField]:
        return [r for r in self.relations if r.kind == "fk"]


def _normalize_unique_together(value) -> tuple[tuple[str, ...], ...]:
    if not value:
        return ()
    if value and isinstance(value[0], str):
        return (tuple(value),)
    return tuple(tuple(group) for group in value)


class ColumnDescriptor:
    """Attribute access for a concrete column."""

    def __init__(self, field: Field):
        self.field = field

    def __get__(self, instance, owner=None):
        if instance is None:
            return self.field
        return instance._data.get(self.field.name)

    def __set__(self, instance, value):
        instance._data[self.field.name] = value


class ForwardFKDescriptor:
    """Attribute access for a ``ForeignKey``: reads dereference lazily."""

    def __init__(self, rel: RelationField):
        self.rel = rel

    def __get__(self, instance, owner=None):
        if instance is None:
            return self.rel
        cached = instance._rel_cache.get(self.rel.name)
        if cached is not None:
            return cached
        pk = instance._data.get(f"{self.rel.name}_id")
        if pk is None:
            return None
        target = instance._registry.get_model(self.rel.target_name())
        obj = runtime.backend().fetch_by_pk(target, pk)
        instance._rel_cache[self.rel.name] = obj
        return obj

    def __set__(self, instance, value):
        if value is None:
            instance._data[f"{self.rel.name}_id"] = None
            instance._rel_cache.pop(self.rel.name, None)
            return
        instance._data[f"{self.rel.name}_id"] = value.pk
        instance._rel_cache[self.rel.name] = value


class FKIdDescriptor:
    """The raw ``<name>_id`` attribute of a ``ForeignKey``."""

    def __init__(self, rel: RelationField):
        self.rel = rel

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return instance._data.get(f"{self.rel.name}_id")

    def __set__(self, instance, value):
        instance._data[f"{self.rel.name}_id"] = value
        instance._rel_cache.pop(self.rel.name, None)


class M2MDescriptor:
    """Attribute access for a ``ManyToManyField``: yields a manager."""

    def __init__(self, rel: RelationField):
        self.rel = rel

    def __get__(self, instance, owner=None):
        if instance is None:
            return self.rel
        return M2MManager(instance, self.rel)


class ModelMeta(type):
    """Collects fields (including via mixins), wires descriptors,
    creates per-class exceptions and registers the model."""

    def __new__(mcls, name, bases, namespace, **kwargs):
        parents = [b for b in bases if isinstance(b, ModelMeta)]
        if not parents:  # the Model base class itself
            return super().__new__(mcls, name, bases, namespace, **kwargs)

        meta_cls = namespace.pop("Meta", None)

        # Gather declared fields: inherited (abstract bases / mixins,
        # following the MRO) first, then this class's own namespace.
        declared: dict[str, Any] = {}
        for base in reversed(bases):
            inherited = getattr(base, "_declared_fields", None)
            if inherited:
                declared.update(inherited)
        own = {
            key: value
            for key, value in list(namespace.items())
            if isinstance(value, (Field, RelationField))
        }
        for key in own:
            namespace.pop(key)
        declared.update(own)

        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        cls._declared_fields = declared
        meta = Options(cls, meta_cls)
        cls._meta = meta
        if meta.abstract:
            return cls

        import copy

        for fname, template in declared.items():
            field = copy.copy(template)  # fresh instance per concrete model
            field.contribute_to_class(cls, fname)
            if isinstance(field, ManyToManyField):
                meta.relations.append(field)
                setattr(cls, fname, M2MDescriptor(field))
            elif isinstance(field, RelationField):
                meta.relations.append(field)
                setattr(cls, fname, ForwardFKDescriptor(field))
                setattr(cls, f"{fname}_id", FKIdDescriptor(field))
            else:
                meta.columns.append(field)
                setattr(cls, fname, ColumnDescriptor(field))
                if field.primary_key:
                    if meta.pk is not None:
                        raise FieldError(f"{name}: multiple primary keys")
                    meta.pk = field

        if meta.pk is None:
            auto = AutoField()
            auto.contribute_to_class(cls, "id")
            meta.columns.insert(0, auto)
            meta.pk = auto
            setattr(cls, "id", ColumnDescriptor(auto))

        cls.DoesNotExist = type("DoesNotExist", (ObjectDoesNotExist,), {})
        cls.MultipleObjectsReturned = type(
            "MultipleObjectsReturned", (MultipleObjectsReturned,), {}
        )
        cls.objects = Manager(cls)
        Registry.active().register(cls)
        return cls


class Model(metaclass=ModelMeta):
    """Base class for persistent models."""

    _meta: Options
    _registry: Registry
    #: marks instances as "object-like" for lookup parsing; the analyzer's
    #: symbolic objects carry the same marker (see ``query.is_object_like``).
    __soir_object__ = True

    def __init__(self, **kwargs):
        self._data: dict[str, Any] = {}
        self._rel_cache: dict[str, Any] = {}
        self._saved = False
        meta = self._meta
        for field in meta.columns:
            self._data[field.name] = field.get_default() if field.has_default() else None
        for rel in meta.fk_relations():
            self._data[f"{rel.name}_id"] = None
        for key, value in kwargs.items():
            if key == "pk":
                key = meta.pk.name
            if any(f.name == key for f in meta.columns):
                setattr(self, key, value)
            elif any(r.name == key for r in meta.relations):
                rel = meta.relation(key)
                if rel.kind == "m2m":
                    raise FieldError(
                        f"{key}: many-to-many values cannot be set at init"
                    )
                setattr(self, key, value)
            elif key.endswith("_id") and any(
                r.name == key[:-3] for r in meta.fk_relations()
            ):
                setattr(self, key, value)
            else:
                raise FieldError(
                    f"{type(self).__name__} got unexpected field {key!r}"
                )

    # ------------------------------------------------------------------

    @property
    def pk(self):
        return self._data.get(self._meta.pk.name)

    def save(self) -> None:
        """Insert or update this object in the current database."""
        runtime.backend().save_instance(self)

    def delete(self) -> None:
        """Delete this object (and run referential actions)."""
        runtime.backend().delete_instance(self)

    def refresh_from_db(self) -> None:
        fresh = runtime.backend().fetch_by_pk(type(self), self.pk)
        if fresh is None:
            raise self.DoesNotExist(f"{type(self).__name__} pk={self.pk!r}")
        self._data = dict(fresh._data)
        self._rel_cache = {}
        self._saved = True

    def full_clean(self) -> None:
        """Validate every column value against its field."""
        for field in self._meta.columns:
            if isinstance(field, AutoField) and self._data.get(field.name) is None:
                continue  # assigned by storage on insert
            field.validate(self._data.get(field.name))

    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Model):
            return NotImplemented
        if type(self) is not type(other):
            return False
        if self.pk is None:
            return self is other
        return self.pk == other.pk

    def __hash__(self) -> int:
        if self.pk is None:
            return id(self)
        return hash((type(self).__name__, self.pk))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} pk={self.pk!r}>"
