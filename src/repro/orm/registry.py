"""Model registry.

A :class:`Registry` plays the role of Django's app registry: every model
class registers itself at class-creation time, relation fields are resolved
(including string forward references), and reverse accessors are installed
on target models.

The registry is also the bridge to verification: :meth:`Registry.to_soir_schema`
derives the SOIR :class:`~repro.soir.schema.Schema` the analyzer and
verifier consume — this is the "harness the power of the language runtime"
part of the paper's embedded-analyzer design (§4.1): the schema is read off
live class objects, never parsed from source.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import TYPE_CHECKING, Iterator

from ..soir.schema import FieldSchema, ModelSchema, RelationSchema, Schema
from .exceptions import FieldError
from .fields import AutoField, Field, ManyToManyField, RelationField

if TYPE_CHECKING:  # pragma: no cover
    from .models import Model


_active_registry: contextvars.ContextVar["Registry | None"] = contextvars.ContextVar(
    "active_registry", default=None
)


class Registry:
    """Holds the model classes of one application."""

    def __init__(self, label: str = "default"):
        self.label = label
        self.models: dict[str, type] = {}
        #: relations whose reverse accessor awaits the target's registration
        self._pending_reverse: dict[str, list[RelationField]] = {}

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def use(self) -> Iterator["Registry"]:
        """Make this registry receive models defined inside the block."""
        token = _active_registry.set(self)
        try:
            yield self
        finally:
            _active_registry.reset(token)

    @staticmethod
    def active() -> "Registry":
        reg = _active_registry.get()
        if reg is None:
            return _default_registry
        return reg

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, model: type) -> None:
        name = model.__name__
        if name in self.models:
            raise FieldError(f"model {name!r} registered twice in {self.label!r}")
        self.models[name] = model
        model._registry = self
        for rel in model._meta.relations:
            self._install_reverse(rel)
        for rel in self._pending_reverse.pop(name, []):
            self._install_reverse(rel)

    def _install_reverse(self, rel: RelationField) -> None:
        from .query import ReverseRelatedDescriptor

        target_name = rel.target_name()
        target = self.models.get(target_name)
        if target is None:
            self._pending_reverse.setdefault(target_name, []).append(rel)
            return
        accessor = rel.related_name or rel.default_related_name()
        setattr(target, accessor, ReverseRelatedDescriptor(rel, accessor))
        target._meta.reverse_relations[accessor] = rel

    def get_model(self, name: str) -> type:
        try:
            return self.models[name]
        except KeyError:
            raise FieldError(f"unknown model {name!r} in registry {self.label!r}") from None

    # ------------------------------------------------------------------
    # SOIR schema derivation
    # ------------------------------------------------------------------

    def to_soir_schema(self) -> Schema:
        """Derive the verification schema from the live model classes."""
        schema = Schema()
        for model in self.models.values():
            meta = model._meta
            fschemas = []
            for f in meta.columns:
                fschemas.append(
                    FieldSchema(
                        name=f.name,
                        type=f.soir_type,
                        unique=f.unique,
                        nullable=f.null,
                        min_value=getattr(f, "min_value", None),
                        choices=_choice_values(f),
                    )
                )
            schema.add_model(
                ModelSchema(
                    name=model.__name__,
                    fields=tuple(fschemas),
                    pk=meta.pk.name,
                    unique_together=tuple(
                        tuple(group) for group in meta.unique_together
                    ),
                    auto_pk=isinstance(meta.pk, AutoField),
                )
            )
        for model in self.models.values():
            for rel in model._meta.relations:
                schema.add_relation(
                    RelationSchema(
                        name=rel.relation_name(),
                        source=model.__name__,
                        target=rel.target_name(),
                        kind=rel.kind,
                        on_delete=rel.on_delete,
                        reverse_name=rel.related_name or rel.default_related_name(),
                        nullable=rel.null,
                    )
                )
        schema.validate()
        return schema


def _choice_values(f: Field) -> tuple | None:
    if f.choices is None:
        return None
    return tuple(c[0] if isinstance(c, (tuple, list)) else c for c in f.choices)


#: The fallback registry used when no ``Registry.use()`` block is active.
_default_registry = Registry("global")


def default_registry() -> Registry:
    return _default_registry
