"""A deterministic logical clock for timestamp fields.

Real wall-clock time would make analysis and simulation non-deterministic;
the ORM instead draws timestamps from a monotonically increasing logical
clock.  SOIR encodes datetimes as integers, so the two layers agree.
"""

from __future__ import annotations

import itertools
import threading

_lock = threading.Lock()
_counter = itertools.count(1_000)


def now() -> int:
    """The next timestamp.  Strictly increasing within a process."""
    with _lock:
        return next(_counter)


def reset(start: int = 1_000) -> None:
    """Reset the clock (tests and simulator runs)."""
    global _counter
    with _lock:
        _counter = itertools.count(start)
