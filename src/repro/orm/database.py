"""In-memory relational database and the concrete execution backend.

The database stores rows, association sets and order counters in a SOIR
:class:`~repro.soir.state.DBState`, and the concrete backend executes
queries by *compiling query-set descriptions to SOIR expressions* and
evaluating them with the SOIR reference interpreter.  Real Django compiles
query sets to SQL lazily; we compile to SOIR lazily — which guarantees that
what the application actually does and what the analyzer says it does are
interpreted by one and the same semantics.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

from ..soir import expr as E
from ..soir.interp import Interpreter, PathAborted
from ..soir.schema import Schema
from ..soir.state import DBState, ObjVal
from ..soir.types import BOOL, Comparator, ListType, Order
from . import runtime
from .clock import now as clock_now
from .exceptions import (
    FieldError,
    IntegrityError,
    ProtectedError,
    TransactionError,
)
from .fields import AutoField, DateTimeField
from .query import Lookup, QuerySet
from .registry import Registry


class Database:
    """One replica's database: schema + state + ID allocation."""

    def __init__(self, registry: Registry, *, site_id: int = 0, sites: int = 1):
        self.registry = registry
        self.schema: Schema = registry.to_soir_schema()
        self.state = DBState.empty(self.schema)
        #: fresh-ID allocation is striped across sites so concurrently
        #: generated IDs are globally unique (the storage-tier property the
        #: verifier's unique-ID optimisation relies on, paper §5.2).
        self.site_id = site_id
        self.sites = max(1, sites)
        self._id_counters: dict[str, int] = {}
        self._tx_depth = 0
        self._tx_snapshot: DBState | None = None

    def allocate_id(self, model_name: str) -> int:
        counter = self._id_counters.get(model_name, 0)
        self._id_counters[model_name] = counter + 1
        return 1 + self.site_id + counter * self.sites

    @contextlib.contextmanager
    def activate(self) -> Iterator["ConcreteBackend"]:
        """Make this database the execution target of ORM operations."""
        with runtime.use_backend(ConcreteBackend(self)) as b:
            yield b

    @contextlib.contextmanager
    def atomic(self) -> Iterator[None]:
        """Transaction: roll back all changes if the block raises.

        Nested ``atomic`` blocks join the outermost transaction, like
        Django's default behaviour without savepoints."""
        if self._tx_depth == 0:
            self._tx_snapshot = self.state.clone()
        self._tx_depth += 1
        try:
            yield
        except BaseException:
            if self._tx_depth == 1:
                assert self._tx_snapshot is not None
                self.state = self._tx_snapshot
            raise
        finally:
            self._tx_depth -= 1
            if self._tx_depth == 0:
                self._tx_snapshot = None

    def in_transaction(self) -> bool:
        return self._tx_depth > 0

    def flush(self) -> None:
        """Drop all rows (tests)."""
        if self.in_transaction():
            raise TransactionError("cannot flush inside a transaction")
        self.state = DBState.empty(self.schema)
        self._id_counters.clear()


def qs_to_soir(qs: QuerySet, schema: Schema) -> E.Expr:
    """Compile a query-set description to a SOIR expression."""
    model_name = qs.model.__name__
    expr: E.Expr = E.All(model_name)
    for lk in qs.lookups:
        expr = E.Filter(expr, lk.relpath, lk.field, lk.op, _value_expr(lk, qs, schema))
    for field_spec in reversed(qs.order_fields):
        if field_spec.startswith("-"):
            expr = E.OrderBy(expr, field_spec[1:], Order.DESC)
        else:
            expr = E.OrderBy(expr, field_spec, Order.ASC)
    if qs.is_reversed:
        expr = E.ReverseSet(expr)
    return expr


def _value_expr(lk: Lookup, qs: QuerySet, schema: Schema) -> E.Expr:
    """Wrap a concrete lookup value as a SOIR literal of the right type."""
    terminal = _terminal_model(schema, qs.model.__name__, lk.relpath)
    ftype = schema.model(terminal).field(lk.field).type
    value = lk.value
    if isinstance(value, E.Expr):
        return value
    if getattr(value, "__soir_symbolic__", False):
        return value.expr
    if lk.op == Comparator.ISNULL:
        return E.Lit(bool(value), BOOL)
    if lk.op == Comparator.IN:
        elems = tuple(value)
        if not all(isinstance(v, (bool, int, float, str)) for v in elems):
            raise FieldError(f"unsupported IN-list value {value!r}")
        return E.Lit(elems, ListType(ftype))
    if value is None:
        return E.NoneLit(ftype)
    if not isinstance(value, (bool, int, float, str)):
        raise FieldError(f"unsupported filter value {value!r}")
    return E.Lit(value, ftype)


def _terminal_model(schema: Schema, start: str, relpath) -> str:
    from ..soir.types import Direction

    current = start
    for hop in relpath:
        rel = schema.relation(hop.relation)
        current = rel.target if hop.direction == Direction.FORWARD else rel.source
    return current


class ConcreteBackend:
    """Executes ORM operations against a :class:`Database`."""

    def __init__(self, db: Database):
        self.db = db

    def _interp(self) -> Interpreter:
        return Interpreter(self.db.schema, self.db.state, {})

    # -- reads -----------------------------------------------------------

    def fetch(self, qs: QuerySet) -> list:
        expr = qs_to_soir(qs, self.db.schema)
        result = self._interp().eval(expr)
        return [self._to_instance(qs.model, obj) for obj in result.objs]

    def fetch_by_pk(self, model: type, pk: Any):
        row = self.db.state.table(model.__name__).get(pk)
        if row is None:
            return None
        return self._to_instance(model, ObjVal(model.__name__, dict(row)))

    def get(self, qs: QuerySet):
        found = self.fetch(qs)
        if not found:
            raise qs.model.DoesNotExist(f"{qs.model.__name__} matching query")
        if len(found) > 1:
            raise qs.model.MultipleObjectsReturned(
                f"{qs.model.__name__}: {len(found)} rows"
            )
        return found[0]

    def first(self, qs: QuerySet):
        found = self.fetch(qs)
        return found[0] if found else None

    def last(self, qs: QuerySet):
        found = self.fetch(qs)
        return found[-1] if found else None

    def exists(self, qs: QuerySet) -> bool:
        return bool(self.fetch(qs))

    def count(self, qs: QuerySet) -> int:
        return len(self.fetch(qs))

    def aggregate(self, qs: QuerySet, agg: str, field_name: str):
        values = [
            obj._data.get(field_name)
            for obj in self.fetch(qs)
            if obj._data.get(field_name) is not None
        ]
        if agg == "sum":
            return sum(values) if values else 0
        if not values:
            return None
        if agg == "avg":
            return sum(values) / len(values)
        if agg == "max":
            return max(values)
        if agg == "min":
            return min(values)
        raise ValueError(f"unknown aggregate {agg!r}")

    def _to_instance(self, model: type, obj: ObjVal):
        instance = model.__new__(model)
        instance._data = dict(obj.fields)
        instance._rel_cache = {}
        instance._saved = True
        pk = obj.fields[model._meta.pk.name]
        for rel in model._meta.fk_relations():
            pairs = self.db.state.relation(rel.relation_name())
            target_pk = next((t for s, t in pairs if s == pk), None)
            instance._data[f"{rel.name}_id"] = target_pk
        return instance

    # -- writes ----------------------------------------------------------

    def create(self, model: type, kwargs: dict):
        instance = model(**kwargs)
        self.save_instance(instance)
        return instance

    def save_instance(self, instance) -> None:
        model = type(instance)
        meta = model._meta
        is_insert = not instance._saved
        if instance.pk is None:
            if isinstance(meta.pk, AutoField):
                instance._data[meta.pk.name] = self.db.allocate_id(model.__name__)
                is_insert = True
            else:
                raise IntegrityError(
                    f"{model.__name__}: primary key {meta.pk.name!r} not set"
                )
        for field in meta.columns:
            if isinstance(field, DateTimeField):
                if field.auto_now or (field.auto_now_add and is_insert):
                    instance._data[field.name] = clock_now()
        instance.full_clean()
        for rel in meta.fk_relations():
            target_pk = instance._data.get(f"{rel.name}_id")
            if target_pk is None:
                if not rel.null:
                    raise IntegrityError(
                        f"{model.__name__}.{rel.name}: NULL foreign key"
                    )
                continue
            target_table = self.db.state.table(rel.target_name())
            if target_pk not in target_table:
                raise IntegrityError(
                    f"{model.__name__}.{rel.name}: dangling reference "
                    f"{target_pk!r}"
                )
        row = {f.name: instance._data.get(f.name) for f in meta.columns}
        interp = self._interp()
        try:
            interp.merge_objects(model.__name__, [ObjVal(model.__name__, row)])
        except PathAborted as abort:
            raise IntegrityError(abort.reason) from None
        pk = instance.pk
        for rel in meta.fk_relations():
            target_pk = instance._data.get(f"{rel.name}_id")
            pairs = self.db.state.relation(rel.relation_name())
            pairs -= {(s, t) for s, t in pairs if s == pk}
            if target_pk is not None:
                pairs.add((pk, target_pk))
        instance._saved = True

    def delete_instance(self, instance) -> None:
        try:
            self._interp().delete_pks(type(instance).__name__, {instance.pk})
        except PathAborted as abort:
            raise ProtectedError(abort.reason) from None
        instance._saved = False

    def update_qs(self, qs: QuerySet, kwargs: dict) -> None:
        model = qs.model
        meta = model._meta
        expr = qs_to_soir(qs, self.db.schema)
        interp = self._interp()
        matched = interp.eval(expr)
        column_updates: dict[str, Any] = {}
        fk_updates: dict[str, Any] = {}
        for key, value in kwargs.items():
            if any(f.name == key for f in meta.columns):
                meta.column(key).validate(value)
                column_updates[key] = value
            elif any(r.name == key for r in meta.fk_relations()):
                fk_updates[key] = value
            elif key.endswith("_id") and any(
                r.name == key[:-3] for r in meta.fk_relations()
            ):
                fk_updates[key[:-3]] = self.fetch_by_pk(
                    model._registry.get_model(meta.relation(key[:-3]).target_name()),
                    value,
                )
            else:
                raise IntegrityError(f"update(): unknown field {key!r}")
        if column_updates:
            changed = []
            for obj in matched.objs:
                new = obj
                for fname, value in column_updates.items():
                    new = new.replace(fname, value)
                changed.append(new)
            try:
                interp.merge_objects(model.__name__, changed)
            except PathAborted as abort:
                raise IntegrityError(abort.reason) from None
        for rel_name, target in fk_updates.items():
            rel = meta.relation(rel_name)
            pairs = self.db.state.relation(rel.relation_name())
            src_pks = {o.fields[meta.pk.name] for o in matched.objs}
            if target is None:
                if not rel.null:
                    raise IntegrityError(
                        f"{model.__name__}.{rel_name}: NULL foreign key"
                    )
                pairs -= {(s, t) for s, t in pairs if s in src_pks}
            else:
                pairs -= {(s, t) for s, t in pairs if s in src_pks}
                pairs |= {(s, target.pk) for s in src_pks}

    def delete_qs(self, qs: QuerySet) -> None:
        expr = qs_to_soir(qs, self.db.schema)
        interp = self._interp()
        matched = interp.eval(expr)
        pk_field = qs.model._meta.pk.name
        try:
            interp.delete_pks(
                qs.model.__name__, {o.fields[pk_field] for o in matched.objs}
            )
        except PathAborted as abort:
            raise ProtectedError(abort.reason) from None

    # -- relation commands -------------------------------------------------

    def link(self, rel, src, dst) -> None:
        self._interp().link_objects(
            rel.relation_name(), _objval(src), _objval(dst)
        )

    def delink(self, rel, src, dst) -> None:
        self._interp().delink_objects(
            rel.relation_name(), _objval(src), _objval(dst)
        )

    def clearlinks(self, rel, instance, end: str) -> None:
        self._interp().clear_links(rel.relation_name(), _objval(instance), end)


def _objval(instance) -> ObjVal:
    return ObjVal(type(instance).__name__, dict(instance._data))
