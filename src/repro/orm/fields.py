"""Model field types.

Fields mirror the Django field zoo the paper's applications rely on,
including the "utility classes that express rich application semantics"
(§2.3): ``PositiveIntegerField`` can only hold non-negative integers and a
``choices`` option restricts values to a fixed set.  These refinements are
surfaced to the verifier through the SOIR schema.

``ForeignKey`` / ``ManyToManyField`` / ``OneToOneField`` declare relations;
the model metaclass turns them into relation descriptors and reverse
accessors, and the storage layer keeps them as association sets (exactly
the SOIR relation representation).
"""

from __future__ import annotations

from typing import Any

from ..soir.types import BOOL, DATETIME, FLOAT, INT, STRING, SoirType
from . import clock
from .exceptions import ValidationError

#: Sentinel for "no default configured".
NOT_PROVIDED = object()

# Referential actions (module-level constants, like django.db.models.CASCADE).
CASCADE = "cascade"
SET_NULL = "set_null"
PROTECT = "protect"
DO_NOTHING = "do_nothing"


class Field:
    """Base class of all concrete (column) fields."""

    soir_type: SoirType = STRING

    def __init__(
        self,
        *,
        primary_key: bool = False,
        unique: bool = False,
        null: bool = False,
        default: Any = NOT_PROVIDED,
        choices: tuple | list | None = None,
    ):
        self.primary_key = primary_key
        self.unique = unique or primary_key
        self.null = null
        self.default = default
        self.choices = tuple(choices) if choices is not None else None
        self.name: str = ""  # assigned by the metaclass
        self.model: type | None = None

    def contribute_to_class(self, model: type, name: str) -> None:
        self.name = name
        self.model = model

    def has_default(self) -> bool:
        return self.default is not NOT_PROVIDED

    def get_default(self) -> Any:
        if not self.has_default():
            return None
        if callable(self.default):
            return self.default()
        return self.default

    def validate(self, value: Any) -> None:
        """Raise :class:`ValidationError` if ``value`` is not storable."""
        if value is None:
            if not self.null and not self.primary_key:
                raise ValidationError(f"{self.name}: NULL not allowed")
            return
        if self.choices is not None:
            allowed = [c[0] if isinstance(c, (tuple, list)) else c for c in self.choices]
            if value not in allowed:
                raise ValidationError(
                    f"{self.name}: {value!r} not in choices {allowed!r}"
                )
        self.check_type(value)

    def check_type(self, value: Any) -> None:
        pass

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class BooleanField(Field):
    soir_type = BOOL

    def check_type(self, value: Any) -> None:
        if not isinstance(value, bool):
            raise ValidationError(f"{self.name}: expected bool, got {value!r}")


class IntegerField(Field):
    soir_type = INT

    #: Lower bound enforced by :meth:`check_type`; ``None`` = unbounded.
    min_value: int | None = None

    def check_type(self, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"{self.name}: expected int, got {value!r}")
        if self.min_value is not None and value < self.min_value:
            raise ValidationError(
                f"{self.name}: {value} below minimum {self.min_value}"
            )


class PositiveIntegerField(IntegerField):
    """Only takes values >= 0 (paper §2.3)."""

    min_value = 0


class AutoField(IntegerField):
    """Storage-assigned integer primary key.

    The geo-replicated storage tier generates globally unique values for
    this field (paper §5.2, unique-ID optimisation)."""

    def __init__(self, **kwargs):
        kwargs.setdefault("primary_key", True)
        super().__init__(**kwargs)


class FloatField(Field):
    soir_type = FLOAT

    def check_type(self, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(f"{self.name}: expected float, got {value!r}")


class TextField(Field):
    soir_type = STRING

    def check_type(self, value: Any) -> None:
        if not isinstance(value, str):
            raise ValidationError(f"{self.name}: expected str, got {value!r}")


class CharField(TextField):
    def __init__(self, max_length: int = 255, **kwargs):
        super().__init__(**kwargs)
        self.max_length = max_length

    def check_type(self, value: Any) -> None:
        super().check_type(value)
        if len(value) > self.max_length:
            raise ValidationError(
                f"{self.name}: length {len(value)} exceeds {self.max_length}"
            )


class SlugField(CharField):
    pass


class EmailField(CharField):
    def check_type(self, value: Any) -> None:
        super().check_type(value)
        if value and "@" not in value:
            raise ValidationError(f"{self.name}: {value!r} is not an email")


class URLField(CharField):
    pass


class DateTimeField(Field):
    """Timestamps, drawn from the deterministic logical clock.

    ``auto_now_add`` stamps on insert; ``auto_now`` stamps on every save
    (both mirror Django's options)."""

    soir_type = DATETIME

    def __init__(self, *, auto_now: bool = False, auto_now_add: bool = False, **kwargs):
        if (auto_now or auto_now_add) and "default" not in kwargs:
            kwargs["default"] = clock.now
        super().__init__(**kwargs)
        self.auto_now = auto_now
        self.auto_now_add = auto_now_add

    def check_type(self, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(
                f"{self.name}: expected int timestamp, got {value!r}"
            )


class RelationField:
    """Base of fields that declare relations rather than columns."""

    kind = "fk"

    def __init__(
        self,
        to: "type | str",
        *,
        on_delete: str = CASCADE,
        related_name: str | None = None,
        null: bool = False,
        unique: bool = False,
    ):
        self.to = to
        self.on_delete = on_delete
        self.related_name = related_name
        self.null = null
        self.unique = unique
        self.name: str = ""
        self.model: type | None = None

    def contribute_to_class(self, model: type, name: str) -> None:
        self.name = name
        self.model = model

    def target_name(self) -> str:
        """The target model's name (supports string and class references)."""
        if isinstance(self.to, str):
            return self.to
        return self.to.__name__

    def default_related_name(self) -> str:
        assert self.model is not None
        return f"{self.model.__name__.lower()}_set"

    def relation_name(self) -> str:
        """The schema-level relation identifier: ``Model.field``."""
        assert self.model is not None
        return f"{self.model.__name__}.{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} -> {self.target_name()}>"


class ForeignKey(RelationField):
    """Many-to-one relation (a related key, paper §2.3)."""

    kind = "fk"


class OneToOneField(ForeignKey):
    """A ForeignKey with a uniqueness constraint on the source side."""

    def __init__(self, to, **kwargs):
        kwargs["unique"] = True
        super().__init__(to, **kwargs)


class ManyToManyField(RelationField):
    """Many-to-many relation; manipulated through related managers."""

    kind = "m2m"

    def __init__(self, to, *, related_name: str | None = None):
        super().__init__(to, on_delete=DO_NOTHING, related_name=related_name)
