"""Discrete-event simulation core.

A minimal, deterministic event-driven simulator: events are ``(time,
sequence, callback)`` triples in a heap; callbacks schedule further events.
Time is simulated milliseconds — wall-clock plays no role, so runs are
exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class Simulator:
    """An event loop over simulated time."""

    def __init__(self):
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` ms from the current simulated time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), callback))

    def run_until(self, end_time: float) -> None:
        """Process events until the queue drains or ``end_time`` passes."""
        while self._queue and self._queue[0][0] <= end_time:
            time, _, callback = heapq.heappop(self._queue)
            self.now = time
            callback()
        self.now = max(self.now, end_time)

    def pending(self) -> int:
        return len(self._queue)
