"""Operation replication under PoR consistency (paper §2.1, §2.2).

The timing simulator (:mod:`repro.georep.deployment`) measures performance;
this module models the *state* side: a set of replica databases executing
SOIR code paths with genuine PoR semantics —

* a request is **generated** at its origin replica against the (possibly
  stale) local state: guards checked, transaction aborts on violation;
* an accepted effect **applies locally** and propagates to every other
  replica, where it is applied with replication semantics;
* remote delivery order is arbitrary **except** that pairs in the
  restriction set preserve their global (coordinated) order — exactly the
  partial order ``O = (U, ≺)`` of PoR consistency.

This turns the verifier's output into something testable end-to-end: with
the verifier's restriction set, replicas converge and invariants hold; with
an empty restriction set, the conflicting workloads the verifier flagged
really do diverge or violate invariants (tests/test_replication.py).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..soir.interp import apply_path, run_path
from ..soir.path import CodePath
from ..soir.schema import Schema
from ..soir.state import DBState


@dataclass(frozen=True)
class Effect:
    """One accepted operation: its path, arguments and global order."""

    index: int
    path: CodePath
    env: dict

    def op_pair_key(self, other: "Effect") -> frozenset[str]:
        return frozenset((self.path.name, other.path.name))


@dataclass
class PoRReplicatedSystem:
    """N replicas executing a stream of operations under PoR scheduling."""

    schema: Schema
    restrictions: set[frozenset[str]]
    sites: int = 3
    seed: int = 11
    initial: DBState | None = None
    #: how many operations may be in flight (un-replicated) per replica —
    #: the concurrency window during which effects can interleave
    window: int = 8

    replicas: list[DBState] = field(init=False)
    #: effects each replica has not applied yet
    pending: list[list[Effect]] = field(init=False)
    accepted: list[Effect] = field(init=False)
    rejected: int = field(init=False, default=0)
    _counter: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        base = self.initial if self.initial is not None else DBState()
        self.replicas = [base.clone() for _ in range(self.sites)]
        self.pending = [[] for _ in range(self.sites)]
        self.accepted = []
        self.rng = random.Random(self.seed)

    # ------------------------------------------------------------------

    def submit(self, path: CodePath, env: dict, origin: int) -> bool:
        """Generate one operation at ``origin``; returns acceptance.

        Coordination first: a PoR runtime may not *accept* an operation
        while a restricted predecessor is still in flight, so any pending
        effect at the origin that conflicts with the new operation (and
        everything ordered before it) is delivered before generation."""
        conflicting = [
            e for e in self.pending[origin]
            if frozenset((e.path.name, path.name)) in self.restrictions
        ]
        if conflicting:
            horizon = max(e.index for e in conflicting)
            for effect in sorted(self.pending[origin], key=lambda e: e.index):
                if effect.index > horizon:
                    break
                self.pending[origin].remove(effect)
                self.replicas[origin] = apply_path(
                    effect.path, self.replicas[origin], effect.env, self.schema
                )
        outcome = run_path(path, self.replicas[origin], env, self.schema)
        if not outcome.committed:
            self.rejected += 1
            return False
        effect = Effect(self._counter, path, env)
        self._counter += 1
        self.accepted.append(effect)
        self.replicas[origin] = outcome.state
        for site in range(self.sites):
            if site != origin:
                self.pending[site].append(effect)
        self._maybe_deliver()
        return True

    def _maybe_deliver(self) -> None:
        for site in range(self.sites):
            while len(self.pending[site]) > self.window:
                self._deliver_one(site)

    def _deliver_one(self, site: int) -> None:
        """Apply one pending effect at ``site``.

        Any pending effect may be chosen (replication is asynchronous),
        except that an effect restricted against an *earlier* pending one
        must wait — restricted pairs apply in their coordinated order."""
        queue = self.pending[site]
        candidates = []
        for i, effect in enumerate(queue):
            blocked = any(
                earlier.index < effect.index
                and effect.op_pair_key(earlier) in self.restrictions
                for earlier in queue[:i] + queue[i + 1:]
            )
            if not blocked:
                candidates.append(i)
        choice = self.rng.choice(candidates) if candidates else 0
        effect = queue.pop(choice)
        self.replicas[site] = apply_path(
            effect.path, self.replicas[site], effect.env, self.schema
        )

    def drain(self) -> None:
        """Deliver every outstanding effect everywhere."""
        for site in range(self.sites):
            while self.pending[site]:
                self._deliver_one(site)

    # ------------------------------------------------------------------

    def converged(self) -> bool:
        """Whether all replicas hold the same state (after :meth:`drain`)."""
        first = self.replicas[0]
        return all(first.same_state(other) for other in self.replicas[1:])

    def check_invariant(self, predicate) -> bool:
        """Whether ``predicate(state)`` holds at every replica."""
        return all(predicate(state) for state in self.replicas)


def run_workload(
    system: PoRReplicatedSystem,
    operations: list[tuple[CodePath, dict]],
) -> int:
    """Submit operations round-robin across sites; returns #accepted."""
    accepted = 0
    for i, (path, env) in enumerate(operations):
        if system.submit(path, env, i % system.sites):
            accepted += 1
    system.drain()
    return accepted
