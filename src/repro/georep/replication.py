"""Operation replication under PoR consistency (paper §2.1, §2.2).

The timing simulator (:mod:`repro.georep.deployment`) measures performance;
this module models the *state* side: a set of replica databases executing
SOIR code paths with genuine PoR semantics —

* a request is **generated** at its origin replica against the (possibly
  stale) local state: guards checked, transaction aborts on violation;
* an accepted effect **applies locally** and propagates to every other
  replica, where it is applied with replication semantics;
* remote delivery order is arbitrary **except** that pairs in the
  restriction set preserve their global (coordinated) order — exactly the
  partial order ``O = (U, ≺)`` of PoR consistency.

Delivery is **durable at-least-once**: every accepted effect is recorded
in a :class:`DeliveryLog` with per-site acknowledgements, unacknowledged
effects are redelivered with exponential backoff, and replicas
deduplicate by effect id before applying — so the end-to-end guarantees
survive the faulty transports of :mod:`repro.georep.faults` (message
loss, duplication, delay, partitions, site crashes).  Restricted pairs
are ordered against the *log*, not the local queue: an effect whose
restricted predecessor has not yet been applied at a site waits for the
redelivery machinery rather than applying out of order.

This turns the verifier's output into something testable end-to-end: with
the verifier's restriction set, replicas converge and invariants hold —
under faults, once they heal and the system drains — while an empty
restriction set lets the flagged workloads really diverge
(tests/test_replication.py, tests/test_chaos.py).
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from ..metrics.registry import inc as _metric_inc, observe as _metric_observe
from ..soir.interp import apply_path, run_path
from ..soir.path import CodePath
from ..soir.schema import Schema
from ..soir.state import DBState
from .faults import PerfectTransport


@dataclass(frozen=True)
class Effect:
    """One accepted operation: its path, arguments and global order."""

    index: int
    path: CodePath
    env: dict
    origin: int = 0

    def op_pair_key(self, other: "Effect") -> frozenset[str]:
        return frozenset((self.path.name, other.path.name))


@dataclass
class DeliveryLog:
    """The durable replication log: accepted effects, per-site acks and
    retry state.  An effect leaves the redelivery loop only once every
    site has acknowledged applying it (at-least-once delivery)."""

    sites: int
    effects: dict[int, Effect] = field(default_factory=dict)
    acks: dict[int, set[int]] = field(default_factory=dict)
    #: (effect index, site) -> retry attempts so far
    attempts: dict[tuple[int, int], int] = field(default_factory=dict)
    #: (effect index, site) -> earliest redelivery round for the next retry
    next_retry: dict[tuple[int, int], int] = field(default_factory=dict)

    def record(self, effect: Effect) -> None:
        self.effects[effect.index] = effect
        self.acks[effect.index] = {effect.origin}

    def ack(self, index: int, site: int) -> None:
        self.acks[index].add(site)
        self.attempts.pop((index, site), None)
        self.next_retry.pop((index, site), None)

    def acked(self, index: int, site: int) -> bool:
        return site in self.acks[index]

    def unacked_pairs(self) -> list[tuple[Effect, int]]:
        """Every (effect, site) still awaiting acknowledgement."""
        out = []
        for index, effect in self.effects.items():
            missing = [s for s in range(self.sites) if s not in self.acks[index]]
            out.extend((effect, s) for s in missing)
        return out

    def fully_acked(self) -> bool:
        return all(
            len(self.acks[index]) == self.sites for index in self.effects
        )


@dataclass
class WorkloadResult:
    """Outcome breakdown of a replicated workload run."""

    submitted: int = 0
    accepted: int = 0
    #: guard violations at generation time (stale-state aborts included)
    rejected: int = 0
    #: restricted operations refused fast during a coordination outage
    coord_rejected: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.submitted if self.submitted else 0.0


@dataclass
class PoRReplicatedSystem:
    """N replicas executing a stream of operations under PoR scheduling."""

    schema: Schema
    restrictions: set[frozenset[str]]
    sites: int = 3
    seed: int = 11
    initial: DBState | None = None
    #: how many operations may be in flight (un-replicated) per replica —
    #: the concurrency window during which effects can interleave
    window: int = 8
    #: replica-to-replica transport; swap in a
    #: :class:`~repro.georep.faults.FaultInjector` for chaos runs
    transport: object = None

    replicas: list[DBState] = field(init=False)
    #: effects each replica has received but not applied yet
    pending: list[list[Effect]] = field(init=False)
    #: effect ids each replica has applied (the idempotence filter)
    applied: list[set[int]] = field(init=False)
    log: DeliveryLog = field(init=False)
    accepted: list[Effect] = field(init=False)
    rejected: int = field(init=False, default=0)
    coord_rejected: int = field(init=False, default=0)
    #: reasons recorded for fail-fast refusals, newest last
    refusals: list[str] = field(init=False)
    redelivered: int = field(init=False, default=0)
    deduplicated: int = field(init=False, default=0)
    _counter: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        base = self.initial if self.initial is not None else DBState()
        self.replicas = [base.clone() for _ in range(self.sites)]
        self.pending = [[] for _ in range(self.sites)]
        self.applied = [set() for _ in range(self.sites)]
        self.log = DeliveryLog(self.sites)
        self.accepted = []
        self.refusals = []
        self.rng = random.Random(self.seed)
        if self.transport is None:
            self.transport = PerfectTransport()

    # ------------------------------------------------------------------

    def _needs_coordination(self, path: CodePath) -> bool:
        return any(path.name in pair for pair in self.restrictions)

    def submit(self, path: CodePath, env: dict, origin: int) -> bool:
        """Generate one operation at ``origin``; returns acceptance.

        Coordination first: a PoR runtime may not *accept* an operation
        while a restricted predecessor is still in flight, so every logged
        effect ordered at or before the newest conflicting one is applied
        at the origin before generation.  During a coordination outage a
        restricted operation fails fast instead (conservative
        degradation: it never executes unordered)."""
        if self._needs_coordination(path):
            if self.transport.coordination_down():
                self.coord_rejected += 1
                self.refusals.append(
                    f"coordination unavailable for restricted {path.name}"
                )
                return False
            conflicting = [
                e for e in self.log.effects.values()
                if e.index not in self.applied[origin]
                and frozenset((e.path.name, path.name)) in self.restrictions
            ]
            if conflicting:
                horizon = max(e.index for e in conflicting)
                for effect in sorted(
                    self.log.effects.values(), key=lambda e: e.index
                ):
                    if effect.index > horizon:
                        break
                    if effect.index in self.applied[origin]:
                        continue
                    self._apply_at(origin, effect)
        outcome = run_path(path, self.replicas[origin], env, self.schema)
        if not outcome.committed:
            self.rejected += 1
            return False
        # Deep-copy the environment: it is shared workload data, and a
        # mutating apply_path at one replica must not leak into another's
        # pending copy of the same effect.
        effect = Effect(self._counter, path, copy.deepcopy(dict(env)), origin)
        self._counter += 1
        self.accepted.append(effect)
        self.log.record(effect)
        self.replicas[origin] = outcome.state
        self.applied[origin].add(effect.index)
        for site in range(self.sites):
            if site != origin:
                self.transport.send(self, effect, site)
        self._maybe_deliver()
        return True

    # ------------------------------------------------------------------

    def receive(self, effect: Effect, site: int) -> None:
        """Transport handoff: enqueue one delivered copy at ``site``.

        A copy of an effect the site already applied is discarded here —
        the effect-id deduplication that makes at-least-once delivery
        safe.  Duplicates still in the queue are kept and absorbed at
        apply time instead, so both dedup points stay exercised."""
        if effect.index in self.applied[site]:
            self.deduplicated += 1
            _metric_inc("noctua_georep_deduplicated_total")
            return
        self.pending[site].append(effect)

    def _apply_at(self, site: int, effect: Effect) -> None:
        """Idempotently apply ``effect`` at ``site`` and acknowledge it."""
        before = len(self.pending[site])
        self.pending[site] = [
            e for e in self.pending[site] if e.index != effect.index
        ]
        copies = before - len(self.pending[site])
        if effect.index in self.applied[site]:
            self.deduplicated += max(1, copies)
            _metric_inc("noctua_georep_deduplicated_total", max(1, copies))
            return
        # All queue copies beyond the one being applied are duplicates.
        if copies > 1:
            self.deduplicated += copies - 1
            _metric_inc("noctua_georep_deduplicated_total", copies - 1)
        self.replicas[site] = apply_path(
            effect.path, self.replicas[site], effect.env, self.schema
        )
        self.applied[site].add(effect.index)
        _metric_inc("noctua_georep_delivered_total", site=str(site))
        # Redelivery attempts recorded so far, plus the send that landed.
        _metric_observe(
            "noctua_georep_delivery_attempts",
            self.log.attempts.get((effect.index, site), 0) + 1,
        )
        self.log.ack(effect.index, site)

    def _blocked(self, site: int, effect: Effect) -> bool:
        """Whether ``effect`` must wait at ``site``: some effect ordered
        before it in the global log is restricted against it and has not
        been applied there yet (it may be in flight, lost, or awaiting
        redelivery — applying now would violate the coordinated order)."""
        return any(
            other.index < effect.index
            and other.index not in self.applied[site]
            and effect.op_pair_key(other) in self.restrictions
            for other in self.log.effects.values()
        )

    def _deliver_one(self, site: int) -> bool:
        """Apply one pending effect at ``site``; returns progress.

        Any pending effect may be chosen (replication is asynchronous),
        except that an effect restricted against an *earlier* logged one
        must wait — restricted pairs apply in their coordinated order."""
        queue = self.pending[site]
        candidates = [
            i for i, effect in enumerate(queue)
            if not self._blocked(site, effect)
        ]
        if not candidates:
            return False
        choice = self.rng.choice(candidates)
        effect = queue[choice]
        self._apply_at(site, effect)
        return True

    def _maybe_deliver(self) -> None:
        for site in range(self.sites):
            while len(self.pending[site]) > self.window:
                if not self._deliver_one(site):
                    # Everything deliverable is blocked on a missing
                    # restricted predecessor; the window softens until
                    # redelivery fills the gap.
                    break

    # ------------------------------------------------------------------

    def crash(self, site: int) -> None:
        """Site failure: the volatile pending queue is lost.  The replica
        database, the applied-set and the delivery log are durable, so
        redelivery restores exactly the missing effects."""
        self.pending[site].clear()

    def redeliver(self, round_no: int = 0) -> int:
        """One redelivery sweep: re-send every unacknowledged effect whose
        backoff window has elapsed and which is not already queued at its
        destination.  Returns how many unacked (effect, site) pairs
        remain."""
        outstanding = 0
        for effect, site in self.log.unacked_pairs():
            outstanding += 1
            if any(e.index == effect.index for e in self.pending[site]):
                continue  # delivered, just not applied yet
            key = (effect.index, site)
            if round_no < self.log.next_retry.get(key, 0):
                continue
            attempts = self.log.attempts.get(key, 0) + 1
            self.log.attempts[key] = attempts
            # Exponential backoff in drain rounds, capped so a long
            # partition cannot push retries past the heal horizon forever.
            self.log.next_retry[key] = round_no + min(2 ** attempts, 16)
            self.redelivered += 1
            _metric_inc("noctua_georep_redelivered_total")
            self.transport.send(self, effect, site)
        return outstanding

    def drain(self, max_rounds: int = 100_000) -> int:
        """Deliver every outstanding effect everywhere.

        Under a faulty transport this loops delivery, transport release
        and log redelivery until the log is fully acknowledged; after
        ``transport.heal()`` it terminates deterministically, and with
        sub-certain loss probabilities it terminates with probability 1
        (``max_rounds`` guards the pathological rest).  Returns the
        number of redelivery rounds it took (0 when everything was
        already delivered) — the chaos harness feeds this into the
        recovery-rounds histogram."""
        round_no = 0
        while True:
            for site in range(self.sites):
                while self.pending[site]:
                    if not self._deliver_one(site):
                        break
            in_flight = self.transport.advance(self)
            outstanding = self.redeliver(round_no)
            if (
                not outstanding
                and not in_flight
                and all(not q for q in self.pending)
            ):
                return round_no
            round_no += 1
            if hasattr(self.transport, "tick"):
                self.transport.tick()
            if round_no > max_rounds:
                raise RuntimeError(
                    f"drain did not converge after {max_rounds} rounds: "
                    f"{outstanding} unacked deliveries outstanding"
                )

    # ------------------------------------------------------------------

    def converged(self) -> bool:
        """Whether all replicas hold the same state (after :meth:`drain`)."""
        first = self.replicas[0]
        return all(first.same_state(other) for other in self.replicas[1:])

    def check_invariant(self, predicate) -> bool:
        """Whether ``predicate(state)`` holds at every replica."""
        return all(predicate(state) for state in self.replicas)


def run_workload(
    system: PoRReplicatedSystem,
    operations: list[tuple[CodePath, dict]],
) -> WorkloadResult:
    """Submit operations round-robin across sites; returns the breakdown."""
    result = WorkloadResult()
    for i, (path, env) in enumerate(operations):
        before = system.coord_rejected
        result.submitted += 1
        if system.submit(path, env, i % system.sites):
            result.accepted += 1
        elif system.coord_rejected > before:
            result.coord_rejected += 1
        else:
            result.rejected += 1
    system.drain()
    return result
