"""The chaos harness: generated workloads under seeded fault schedules.

This closes the robustness loop around the verifier: the restriction set
it computes is supposed to be *sufficient* — replicas converge and
schema invariants hold — not just on a perfect network but under message
loss, duplication, delay, partitions, site crashes and coordination
outages.  The harness runs a generated workload over the hardened
:class:`~repro.georep.replication.PoRReplicatedSystem` behind a
:class:`~repro.georep.faults.FaultInjector`, heals all faults, drains the
delivery log, and checks:

* **convergence** — all replicas reach the same state;
* **invariants** — every replica satisfies the schema-derived invariant
  (unique fields are unique, bounded fields respect their bounds);

and, run again with the *empty* restriction set on the same seed, that
the flagged anomalies really appear — the necessity direction.

Everything is deterministic per seed: the workload, the fault schedule
and the resulting :class:`~repro.georep.metrics.FaultCounters` are pure
functions of ``(app, seed, knobs)``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..metrics.registry import inc as _metric_inc, observe as _metric_observe
from ..obs import tracer as obs
from ..soir.state import DBState
from ..soir.types import BOOL, DATETIME, FLOAT, INT, STRING
from .faults import FaultConfig, FaultInjector
from .metrics import FaultCounters
from .replication import PoRReplicatedSystem, WorkloadResult, run_workload
from ..verifier.scopes import StateGenerator, build_scope, collect_args

#: pk range of the generically seeded initial state
SEED_IDS_PER_MODEL = 4


# ---------------------------------------------------------------------------
# Generic workload / state / invariant derivation
# ---------------------------------------------------------------------------


def initial_state(analysis, *, ids_per_model: int = SEED_IDS_PER_MODEL) -> DBState:
    """A well-formed populated state for the app, derived from its schema
    via the verifier's own scope machinery (so every app the verifier can
    check, the chaos harness can seed)."""
    paths = usable_paths(analysis)
    scope = build_scope(analysis.schema, paths, ids_per_model=ids_per_model)
    return StateGenerator(scope).canonical_states()[0]


def usable_paths(analysis) -> list:
    """Effectful paths the reference interpreter can execute faithfully."""
    paths = [
        p for p in analysis.effectful_paths
        if not getattr(p, "aborted", False)
        and not getattr(p, "conservative", False)
    ]
    return paths or list(analysis.effectful_paths)


def generate_operations(
    analysis,
    *,
    count: int,
    seed: int,
    ids_per_model: int = SEED_IDS_PER_MODEL,
) -> list[tuple[object, dict]]:
    """``count`` seeded (path, env) operations over the app's effectful
    paths.  Argument values are drawn collision-biased from the scope's
    type domains plus the seeded pk range — conflicts need two operations
    naming the same row — while fresh-ID arguments get globally distinct
    storage-style values."""
    paths = usable_paths(analysis)
    scope = build_scope(analysis.schema, paths, ids_per_model=ids_per_model)
    rng = random.Random(seed ^ 0xC4A05)
    fresh = 0

    int_pool = list(range(1, ids_per_model + 1)) + [
        v for v in scope.type_domains.get(INT, []) if v > 0
    ]
    string_pool = (list(scope.type_domains.get(STRING, [])) or ["aa"])[:6]

    def value_for(arg) -> object:
        nonlocal fresh
        if arg.unique_id:
            fresh += 1
            return f"cf{fresh}" if arg.type == STRING else 10_000 + fresh
        if arg.type == INT:
            return rng.choice(int_pool)
        if arg.type == STRING:
            return rng.choice(string_pool)
        if arg.type == BOOL:
            return rng.choice([True, False])
        if arg.type == DATETIME:
            return rng.choice([0, 1, 2])
        if arg.type == FLOAT:
            return rng.choice([0.0, 1.0, 2.0])
        return None

    ops = []
    for _ in range(count):
        path = rng.choice(paths)
        env = {arg.name: value_for(arg) for arg in collect_args(path)}
        ops.append((path, env))
    return ops


def schema_invariant(schema):
    """The schema-derived invariant predicate: unique fields hold distinct
    values and bounded fields respect ``min_value`` — exactly the
    integrity the guards enforce at generation time and replication is
    expected to preserve."""

    def check(state: DBState) -> bool:
        for mname in schema.models:
            model = schema.model(mname)
            rows = list(state.table(mname).values())
            for f in model.fields:
                if f.unique:
                    values = [
                        row.get(f.name) for row in rows
                        if row.get(f.name) is not None
                    ]
                    if len(values) != len(set(values)):
                        return False
                if f.min_value is not None:
                    if any(
                        row.get(f.name) is not None
                        and row[f.name] < f.min_value
                        for row in rows
                    ):
                        return False
            for group in model.unique_together:
                keys = [tuple(row.get(g) for g in group) for row in rows]
                if len(keys) != len(set(keys)):
                    return False
        return True

    return check


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    app: str
    seed: int
    sites: int
    operations: int
    restrictions: int
    result: WorkloadResult
    converged: bool
    invariant_ok: bool
    counters: FaultCounters
    #: fail-fast reasons recorded during coordination outages
    refusals: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.converged and self.invariant_ok


@dataclass
class ChaosRunner:
    """Runs one generated workload under one seeded fault schedule."""

    analysis: object
    restrictions: set[frozenset[str]]
    faults: FaultConfig
    sites: int = 3
    initial: DBState | None = None

    def run(self, operations: list[tuple[object, dict]]) -> ChaosReport:
        app_name = getattr(self.analysis, "app_name", "?")
        with obs.span(f"chaos {app_name}", "chaos-run", app=app_name,
                      seed=self.faults.seed, sites=self.sites,
                      operations=len(operations),
                      restrictions=len(self.restrictions)) as run_span:
            injector = FaultInjector(self.faults)
            base = (
                self.initial if self.initial is not None
                else initial_state(self.analysis)
            )
            system = PoRReplicatedSystem(
                self.analysis.schema,
                set(self.restrictions),
                sites=self.sites,
                seed=self.faults.seed,
                initial=base,
                transport=injector,
            )
            with obs.span("workload", "chaos-phase"):
                for i, (path, env) in enumerate(operations):
                    # The injector's logical clock is the operation index,
                    # so the schedule is a pure function of the seed and
                    # the op count.
                    injector.clock = float(i)
                    for site, start in injector.crashed_sites():
                        system.crash(site)
                        injector.mark_crashed(site, start)
                    injector.advance(system)
                    system.submit(path, env, i % self.sites)
            # Heal: move past every scheduled window, flush held messages,
            # then drain the delivery log to full acknowledgement.
            with obs.span("heal", "chaos-phase"):
                injector.clock = max(
                    float(len(operations)), self.faults.horizon()
                )
                injector.heal(system)
            with obs.span("drain", "chaos-phase") as drain_span:
                drain_start = time.perf_counter()
                rounds = system.drain()
                recovery_s = time.perf_counter() - drain_start
                drain_span.set(rounds=rounds)
                _metric_observe("noctua_chaos_recovery_seconds", recovery_s)
                _metric_observe("noctua_chaos_recovery_rounds", rounds)

            counters = injector.counters
            counters.redelivered = system.redelivered
            counters.deduplicated = system.deduplicated
            counters.coord_failures = system.coord_rejected
            result = WorkloadResult(
                submitted=len(operations),
                accepted=len(system.accepted),
                rejected=system.rejected,
                coord_rejected=system.coord_rejected,
            )
            with obs.span("convergence", "chaos-phase") as check_span:
                converged = system.converged()
                invariant_ok = system.check_invariant(
                    schema_invariant(self.analysis.schema)
                )
                check_span.set(converged=converged,
                               invariant_ok=invariant_ok)
            run_span.set(
                accepted=result.accepted, rejected=result.rejected,
                coord_rejected=result.coord_rejected,
                converged=converged, invariant_ok=invariant_ok,
            )
            _metric_inc("noctua_chaos_runs_total",
                        converged="true" if converged else "false")
            return ChaosReport(
                app=app_name,
                seed=self.faults.seed,
                sites=self.sites,
                operations=len(operations),
                restrictions=len(self.restrictions),
                result=result,
                converged=converged,
                invariant_ok=invariant_ok,
                counters=counters,
                refusals=list(system.refusals),
            )


def run_chaos(
    analysis,
    restrictions: set[frozenset[str]],
    *,
    seed: int,
    operations: int = 200,
    sites: int = 3,
    faults: FaultConfig | None = None,
) -> ChaosReport:
    """One-call entry: generate the workload, run it under the fault
    schedule (defaulting to the full chaos mix), report the outcome."""
    if faults is None:
        faults = FaultConfig.chaos(seed, span=float(operations), sites=sites)
    ops = generate_operations(analysis, count=operations, seed=seed)
    runner = ChaosRunner(analysis, restrictions, faults, sites=sites)
    return runner.run(ops)
