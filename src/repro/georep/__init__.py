"""Geo-replication substrate (paper §6.5, Figures 10-11) plus chaos layer.

A deterministic discrete-event simulation of a 3-site deployment with a
centralized coordination service honouring the verifier's restriction set;
workload generators with a write-ratio knob; throughput/latency metrics;
and a seeded fault-injection/chaos layer exercising the runtime's durable
at-least-once delivery under loss, duplication, delay, partitions, site
crashes and coordination outages.
"""

from .chaos import ChaosReport, ChaosRunner, run_chaos, schema_invariant
from .coordination import ActiveOp, CoordinationService
from .deployment import (
    Deployment,
    DeploymentConfig,
    RestrictionSetSubscription,
    run_modes,
)
from .faults import (
    CrashWindow,
    FaultConfig,
    FaultInjector,
    OutageWindow,
    PartitionWindow,
    PerfectTransport,
)
from .metrics import FaultCounters, Metrics, RunSummary
from .replication import (
    DeliveryLog,
    Effect,
    PoRReplicatedSystem,
    WorkloadResult,
    run_workload,
)
from .simulator import Simulator
from .workload import RequestSpec, Workload, postgraduation_workload, zhihu_workload

__all__ = [
    "ActiveOp",
    "ChaosReport",
    "ChaosRunner",
    "CoordinationService",
    "CrashWindow",
    "DeliveryLog",
    "Deployment",
    "DeploymentConfig",
    "Effect",
    "FaultConfig",
    "FaultCounters",
    "FaultInjector",
    "Metrics",
    "OutageWindow",
    "PartitionWindow",
    "PerfectTransport",
    "PoRReplicatedSystem",
    "RequestSpec",
    "RestrictionSetSubscription",
    "RunSummary",
    "Simulator",
    "Workload",
    "WorkloadResult",
    "postgraduation_workload",
    "run_chaos",
    "run_modes",
    "run_workload",
    "schema_invariant",
    "zhihu_workload",
]
