"""Geo-replication performance substrate (paper §6.5, Figures 10-11).

A deterministic discrete-event simulation of a 3-site deployment with a
centralized coordination service honouring the verifier's restriction set;
workload generators with a write-ratio knob; throughput/latency metrics.
"""

from .coordination import ActiveOp, CoordinationService
from .deployment import Deployment, DeploymentConfig, run_modes
from .metrics import Metrics, RunSummary
from .simulator import Simulator
from .workload import RequestSpec, Workload, postgraduation_workload, zhihu_workload

__all__ = [
    "ActiveOp",
    "CoordinationService",
    "Deployment",
    "DeploymentConfig",
    "Metrics",
    "RequestSpec",
    "RunSummary",
    "Simulator",
    "Workload",
    "postgraduation_workload",
    "run_modes",
    "zhihu_workload",
]
