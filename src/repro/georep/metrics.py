"""Throughput / latency aggregation for simulation runs.

Since the unified metrics layer landed, the fault counters here are a
*projection of the shared registry* rather than a hand-rolled struct:
:class:`FaultCounters` stores every count as a
``noctua_georep_faults_total{kind=...}`` series on a private
:class:`~repro.metrics.MetricsRegistry`, and attribute access
(``counters.dropped += 1``) is routed through that registry.  When an
ambient registry is active (``metrics.activate``), positive increments
are forwarded to it as well, so a chaos or deployment run accumulates
into the same snapshot the engine and solver families land in.  The
public surface — plain attributes and :meth:`FaultCounters.as_dict` —
is unchanged, and so is the chaos determinism contract (every counter
is a pure function of the fault seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.registry import (
    MetricsRegistry,
    inc as _ambient_inc,
    observe as _ambient_observe,
)

#: every fault kind, in ``as_dict`` order
_FAULT_KINDS: tuple[str, ...] = (
    "dropped",          # messages lost in transit
    "duplicated",       # extra copies injected
    "delayed",          # messages held back by a delay spike
    "partition_drops",  # sends refused by an active partition
    "partition_ms",     # total simulated time spent partitioned
    "redelivered",      # retry sends issued from the delivery log
    "deduplicated",     # duplicate deliveries discarded at apply
    "crashes",          # site crash events
    "lease_expiries",   # coordination leases reclaimed by timeout
    "coord_failures",   # requests failed fast (outage / partition)
)

_FAMILY = "noctua_georep_faults_total"


class FaultCounters:
    """What the fault layer did to a run — every counter is deterministic
    for a fixed fault seed (the chaos determinism contract).

    Backed by a private metrics registry; kinds already metered at their
    source (``redelivered`` / ``deduplicated`` by
    :mod:`repro.georep.replication`, ``partition_ms`` by its own total)
    are not re-forwarded to the ambient registry, so nothing is counted
    twice.
    """

    __slots__ = ("_registry",)

    _KINDS = frozenset(_FAULT_KINDS)
    _FLOAT_KINDS = frozenset(("partition_ms",))
    _FORWARDED = frozenset((
        "dropped", "duplicated", "delayed", "partition_drops",
        "crashes", "lease_expiries", "coord_failures",
    ))

    def __init__(self, **initial: float):
        object.__setattr__(self, "_registry", MetricsRegistry())
        for kind, value in initial.items():
            setattr(self, kind, value)

    def __getattr__(self, name: str):
        if name in FaultCounters._KINDS:
            value = self._registry.value(_FAMILY, kind=name)
            return value if name in FaultCounters._FLOAT_KINDS else int(value)
        raise AttributeError(
            f"{type(self).__name__!s} has no counter {name!r}")

    def __setattr__(self, name: str, value: float) -> None:
        if name not in FaultCounters._KINDS:
            raise AttributeError(
                f"{type(self).__name__!s} has no counter {name!r}")
        delta = value - getattr(self, name)
        if not delta:
            return
        self._registry.inc(_FAMILY, delta, kind=name)
        if delta > 0:
            if name == "partition_ms":
                _ambient_inc("noctua_georep_partition_ms_total", delta)
            elif name in FaultCounters._FORWARDED:
                _ambient_inc(_FAMILY, delta, kind=name)

    def as_dict(self) -> dict[str, float]:
        return {kind: getattr(self, kind) for kind in _FAULT_KINDS}

    def __repr__(self) -> str:  # mirrors the old dataclass repr
        body = ", ".join(f"{k}={getattr(self, k)!r}" for k in _FAULT_KINDS)
        return f"FaultCounters({body})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultCounters):
            return NotImplemented
        return self.as_dict() == other.as_dict()


@dataclass
class Metrics:
    """Per-run measurement sink."""

    #: (completion_time_ms, latency_ms, is_write, ok)
    completions: list[tuple[float, float, bool, bool]] = field(default_factory=list)
    warmup_ms: float = 0.0
    faults: FaultCounters = field(default_factory=FaultCounters)

    def record(self, now: float, latency: float, is_write: bool, ok: bool) -> None:
        self.completions.append((now, latency, is_write, ok))
        op = "write" if is_write else "read"
        _ambient_inc("noctua_georep_requests_total", op=op,
                     ok="true" if ok else "false")
        _ambient_observe("noctua_georep_request_latency_ms", latency, op=op)

    def _steady(self) -> list[tuple[float, float, bool, bool]]:
        return [c for c in self.completions if c[0] >= self.warmup_ms]

    def throughput(self, duration_ms: float) -> float:
        """Completed requests per second over the steady-state window."""
        window = max(duration_ms - self.warmup_ms, 1e-9)
        return len(self._steady()) / (window / 1e3)

    def avg_latency_ms(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(c[1] for c in steady) / len(steady)

    def percentile_latency_ms(self, fraction: float) -> float:
        steady = sorted(c[1] for c in self._steady())
        if not steady:
            return 0.0
        index = min(len(steady) - 1, int(fraction * len(steady)))
        return steady[index]

    def write_fraction(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(1 for c in steady if c[2]) / len(steady)

    def error_fraction(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(1 for c in steady if not c[3]) / len(steady)


@dataclass(frozen=True)
class RunSummary:
    """One row of the Figures 10/11 series."""

    app: str
    mode: str  # "SC" | "15%" | "30%" | "50%"
    throughput_rps: float
    avg_latency_ms: float
    p95_latency_ms: float
    requests: int
    #: fraction of steady-state requests that failed (4xx/5xx or degraded
    #: fail-fast responses) — makes degraded runs visible in sweeps
    error_fraction: float = 0.0
    faults: FaultCounters | None = None
