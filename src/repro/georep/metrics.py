"""Throughput / latency aggregation for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultCounters:
    """What the fault layer did to a run — every counter is deterministic
    for a fixed fault seed (the chaos determinism contract)."""

    dropped: int = 0            #: messages lost in transit
    duplicated: int = 0         #: extra copies injected
    delayed: int = 0            #: messages held back by a delay spike
    partition_drops: int = 0    #: sends refused by an active partition
    partition_ms: float = 0.0   #: total simulated time spent partitioned
    redelivered: int = 0        #: retry sends issued from the delivery log
    deduplicated: int = 0       #: duplicate deliveries discarded at apply
    crashes: int = 0            #: site crash events
    lease_expiries: int = 0     #: coordination leases reclaimed by timeout
    coord_failures: int = 0     #: requests failed fast (outage / partition)

    def as_dict(self) -> dict[str, float]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "partition_drops": self.partition_drops,
            "partition_ms": self.partition_ms,
            "redelivered": self.redelivered,
            "deduplicated": self.deduplicated,
            "crashes": self.crashes,
            "lease_expiries": self.lease_expiries,
            "coord_failures": self.coord_failures,
        }


@dataclass
class Metrics:
    """Per-run measurement sink."""

    #: (completion_time_ms, latency_ms, is_write, ok)
    completions: list[tuple[float, float, bool, bool]] = field(default_factory=list)
    warmup_ms: float = 0.0
    faults: FaultCounters = field(default_factory=FaultCounters)

    def record(self, now: float, latency: float, is_write: bool, ok: bool) -> None:
        self.completions.append((now, latency, is_write, ok))

    def _steady(self) -> list[tuple[float, float, bool, bool]]:
        return [c for c in self.completions if c[0] >= self.warmup_ms]

    def throughput(self, duration_ms: float) -> float:
        """Completed requests per second over the steady-state window."""
        window = max(duration_ms - self.warmup_ms, 1e-9)
        return len(self._steady()) / (window / 1e3)

    def avg_latency_ms(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(c[1] for c in steady) / len(steady)

    def percentile_latency_ms(self, fraction: float) -> float:
        steady = sorted(c[1] for c in self._steady())
        if not steady:
            return 0.0
        index = min(len(steady) - 1, int(fraction * len(steady)))
        return steady[index]

    def write_fraction(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(1 for c in steady if c[2]) / len(steady)

    def error_fraction(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(1 for c in steady if not c[3]) / len(steady)


@dataclass(frozen=True)
class RunSummary:
    """One row of the Figures 10/11 series."""

    app: str
    mode: str  # "SC" | "15%" | "30%" | "50%"
    throughput_rps: float
    avg_latency_ms: float
    p95_latency_ms: float
    requests: int
    #: fraction of steady-state requests that failed (4xx/5xx or degraded
    #: fail-fast responses) — makes degraded runs visible in sweeps
    error_fraction: float = 0.0
    faults: FaultCounters | None = None
