"""Throughput / latency aggregation for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Per-run measurement sink."""

    #: (completion_time_ms, latency_ms, is_write, ok)
    completions: list[tuple[float, float, bool, bool]] = field(default_factory=list)
    warmup_ms: float = 0.0

    def record(self, now: float, latency: float, is_write: bool, ok: bool) -> None:
        self.completions.append((now, latency, is_write, ok))

    def _steady(self) -> list[tuple[float, float, bool, bool]]:
        return [c for c in self.completions if c[0] >= self.warmup_ms]

    def throughput(self, duration_ms: float) -> float:
        """Completed requests per second over the steady-state window."""
        window = max(duration_ms - self.warmup_ms, 1e-9)
        return len(self._steady()) / (window / 1e3)

    def avg_latency_ms(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(c[1] for c in steady) / len(steady)

    def percentile_latency_ms(self, fraction: float) -> float:
        steady = sorted(c[1] for c in self._steady())
        if not steady:
            return 0.0
        index = min(len(steady) - 1, int(fraction * len(steady)))
        return steady[index]

    def write_fraction(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(1 for c in steady if c[2]) / len(steady)

    def error_fraction(self) -> float:
        steady = self._steady()
        if not steady:
            return 0.0
        return sum(1 for c in steady if not c[3]) / len(steady)


@dataclass(frozen=True)
class RunSummary:
    """One row of the Figures 10/11 series."""

    app: str
    mode: str  # "SC" | "15%" | "30%" | "50%"
    throughput_rps: float
    avg_latency_ms: float
    p95_latency_ms: float
    requests: int
