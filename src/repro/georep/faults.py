"""Deterministic, seeded fault injection for the replication substrate.

The perfect network of :mod:`repro.georep.replication` is wrapped by a
:class:`FaultInjector` transport that can, per message and per fault seed,

* **lose** the message (the delivery log redelivers it later),
* **duplicate** it (effect-id deduplication absorbs the extra copy),
* **delay** it by a few delivery rounds (reordering beyond the window),
* refuse it while a **partition** separates origin and destination,

and, against the system as a whole, schedule **site crashes** (un-applied
pending effects are lost and must be redelivered), and **coordination
outages** (restricted operations fail fast instead of executing
unordered).

Determinism contract: every decision is drawn from one ``random.Random``
seeded from :attr:`FaultConfig.seed`, and schedules are expressed on a
logical clock (operation index for the state model, simulated ms for the
timing model).  Identical configs therefore produce identical fault
schedules and identical :class:`~repro.georep.metrics.FaultCounters`.

After :meth:`FaultInjector.heal` the transport is perfect again: held and
refused messages flush, nothing new is dropped, and a drain converges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from .metrics import FaultCounters


@dataclass(frozen=True)
class PartitionWindow:
    """Sites split into groups between ``start`` and ``end`` (half-open,
    on the injector's logical clock); messages cross groups only after the
    window heals."""

    start: float
    end: float
    groups: tuple[frozenset[int], ...]

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def separated(self, a: int, b: int) -> bool:
        ga = next((g for g in self.groups if a in g), None)
        gb = next((g for g in self.groups if b in g), None)
        # Sites not named by any group are unreachable from everyone —
        # a site-set split covers the whole cluster by construction, so
        # this only triggers for deliberately isolated sites.
        return ga is None or gb is None or ga is not gb


@dataclass(frozen=True)
class CrashWindow:
    """``site`` is down between ``start`` and ``end``: its un-applied
    pending effects are lost at ``start`` and nothing is delivered to it
    until ``end``."""

    site: int
    start: float
    end: float

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class OutageWindow:
    """The coordination service is unreachable between ``start`` and
    ``end``: restricted operations fail fast with a recorded reason."""

    start: float
    end: float

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultConfig:
    """One seeded fault schedule.

    Probabilities apply per send *attempt* (so a lost message may be lost
    again on redelivery); windows are on the logical clock of whichever
    harness interprets the config.
    """

    seed: int = 0
    loss_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    #: maximum hold time for a delayed message, in clock units
    max_delay: float = 6.0
    partitions: tuple[PartitionWindow, ...] = ()
    crashes: tuple[CrashWindow, ...] = ()
    coord_outages: tuple[OutageWindow, ...] = ()

    # ------------------------------------------------------------------

    def partitioned(self, a: int, b: int, now: float) -> bool:
        return any(w.active(now) and w.separated(a, b) for w in self.partitions)

    def crashed(self, site: int, now: float) -> bool:
        return any(w.active(now) and w.site == site for w in self.crashes)

    def coordination_down(self, now: float) -> bool:
        return any(w.active(now) for w in self.coord_outages)

    def horizon(self) -> float:
        """The clock time after which every scheduled window has healed."""
        ends = [w.end for w in self.partitions]
        ends += [w.end for w in self.crashes]
        ends += [w.end for w in self.coord_outages]
        return max(ends, default=0.0)

    # ------------------------------------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int,
        *,
        span: float,
        sites: int = 3,
        loss: float = 0.08,
        dup: float = 0.08,
        delay: float = 0.15,
        partitions: int = 1,
        crashes: int = 1,
        outages: int = 0,
    ) -> "FaultConfig":
        """A randomized-but-seeded schedule covering ``span`` clock units:
        ``partitions`` site-set splits, ``crashes`` site crashes and
        ``outages`` coordination outages, each healing before ``span``."""
        rng = random.Random(seed)
        parts = []
        for _ in range(partitions):
            start = rng.uniform(0.1, 0.5) * span
            length = rng.uniform(0.1, 0.3) * span
            cut = rng.randrange(1, sites)
            members = list(range(sites))
            rng.shuffle(members)
            groups = (frozenset(members[:cut]), frozenset(members[cut:]))
            parts.append(PartitionWindow(start, min(start + length, 0.9 * span), groups))
        crash_list = []
        for _ in range(crashes):
            site = rng.randrange(sites)
            start = rng.uniform(0.1, 0.6) * span
            length = rng.uniform(0.05, 0.2) * span
            crash_list.append(CrashWindow(site, start, min(start + length, 0.9 * span)))
        outage_list = []
        for _ in range(outages):
            start = rng.uniform(0.1, 0.7) * span
            length = rng.uniform(0.05, 0.15) * span
            outage_list.append(OutageWindow(start, min(start + length, 0.9 * span)))
        return cls(
            seed=seed,
            loss_prob=loss,
            dup_prob=dup,
            delay_prob=delay,
            max_delay=max(2.0, 0.03 * span),
            partitions=tuple(parts),
            crashes=tuple(crash_list),
            coord_outages=tuple(outage_list),
        )

    @classmethod
    def parse(cls, spec: str, *, seed: int, span: float, sites: int = 3) -> "FaultConfig":
        """Parse a CLI fault spec: comma-separated ``name`` flags and
        ``name=value`` probabilities, e.g. ``loss=0.1,dup=0.05,partition,
        crash,outage``.  ``all`` enables the full chaos schedule."""
        config = cls(seed=seed)
        if not spec:
            return config
        partitions = crashes = outages = 0
        loss = dup = delay = 0.0
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            name, _, value = item.partition("=")
            name = name.strip()
            if name == "all":
                return cls.chaos(seed, span=span, sites=sites, outages=1)
            if name == "loss":
                loss = float(value) if value else 0.08
            elif name in ("dup", "duplication"):
                dup = float(value) if value else 0.08
            elif name == "delay":
                delay = float(value) if value else 0.15
            elif name in ("partition", "partitions"):
                partitions = int(value) if value else 1
            elif name in ("crash", "crashes"):
                crashes = int(value) if value else 1
            elif name in ("outage", "outages"):
                outages = int(value) if value else 1
            else:
                raise ValueError(f"unknown fault {name!r}")
        config = cls.chaos(
            seed, span=span, sites=sites,
            loss=loss, dup=dup, delay=delay,
            partitions=partitions, crashes=crashes, outages=outages,
        )
        if not partitions:
            config = replace(config, partitions=())
        if not crashes:
            config = replace(config, crashes=())
        if not outages:
            config = replace(config, coord_outages=())
        return config


class FaultInjector:
    """A faulty transport for :class:`PoRReplicatedSystem`.

    The replicated system calls :meth:`send` for every (re)delivery
    attempt; the injector decides the message's fate from its seeded RNG
    and the configured windows, holding delayed messages in an in-flight
    buffer released by :meth:`advance`.  The injector's ``clock`` is set
    by the harness (operation index)."""

    def __init__(self, config: FaultConfig):
        self.config = config
        self.rng = random.Random(config.seed ^ 0xFA017)
        self.counters = FaultCounters()
        self.clock: float = 0.0
        self.healed = False
        #: (release_at, sequence, effect, dest) — sequence keeps release
        #: order deterministic for equal release times
        self._in_flight: list[tuple[float, int, object, int]] = []
        self._seq = 0
        self._crashed_started: set[tuple[int, float]] = set()

    # ------------------------------------------------------------------

    def coordination_down(self) -> bool:
        return not self.healed and self.config.coordination_down(self.clock)

    def crashed_sites(self) -> list[int]:
        """Sites whose crash window starts at or before the current clock
        and has not yet been acknowledged via :meth:`mark_crashed`."""
        out = []
        for w in self.config.crashes:
            if self.healed:
                continue
            if w.active(self.clock) and (w.site, w.start) not in self._crashed_started:
                out.append((w.site, w.start))
        return out

    def mark_crashed(self, site: int, start: float) -> None:
        self._crashed_started.add((site, start))
        self.counters.crashes += 1

    # ------------------------------------------------------------------

    def send(self, system, effect, dest: int) -> None:
        """One delivery attempt of ``effect`` to ``dest``."""
        if self.healed:
            system.receive(effect, dest)
            return
        now = self.clock
        if self.config.crashed(dest, now):
            # A downed site accepts nothing; the delivery log retries.
            self.counters.dropped += 1
            return
        if self.config.partitioned(effect.origin, dest, now):
            self.counters.partition_drops += 1
            return
        roll = self.rng.random()
        if roll < self.config.loss_prob:
            self.counters.dropped += 1
            return
        if roll < self.config.loss_prob + self.config.dup_prob:
            self.counters.duplicated += 1
            system.receive(effect, dest)
            system.receive(effect, dest)
            return
        if roll < (self.config.loss_prob + self.config.dup_prob
                   + self.config.delay_prob):
            self.counters.delayed += 1
            hold = self.rng.uniform(1.0, self.config.max_delay)
            self._seq += 1
            self._in_flight.append((now + hold, self._seq, effect, dest))
            return
        system.receive(effect, dest)

    def advance(self, system) -> bool:
        """Release matured in-flight messages; returns whether any message
        remains held."""
        still: list[tuple[float, int, object, int]] = []
        for release_at, seq, effect, dest in sorted(self._in_flight):
            if self.healed or release_at <= self.clock:
                system.receive(effect, dest)
            else:
                still.append((release_at, seq, effect, dest))
        self._in_flight = still
        return bool(still)

    def quiescent(self) -> bool:
        return not self._in_flight

    def tick(self) -> None:
        """Advance the logical clock one unit (called between drain
        rounds, so held messages mature and windows eventually heal even
        when no new operations arrive)."""
        self.clock += 1.0

    def heal(self, system=None) -> None:
        """End all faults: flush held messages, deliver everything from
        now on.  After healing, a drain converges deterministically."""
        self.healed = True
        if system is not None:
            self.advance(system)


class PerfectTransport:
    """The default transport: immediate, exactly-once, in-order handoff
    to the destination's pending queue."""

    counters = None

    def send(self, system, effect, dest: int) -> None:
        system.receive(effect, dest)

    def advance(self, system) -> bool:
        return False

    def quiescent(self) -> bool:
        return True

    def heal(self, system=None) -> None:
        pass

    def coordination_down(self) -> bool:
        return False

    def crashed_sites(self) -> list:
        return []
