"""A simulated 3-site geo-replicated deployment (paper §6.5).

Sites run web servers against replicated storage; a centralized
coordination service (colocated with site 0) orders restricted operation
pairs.  Timing is simulated (cross-node one-way latency of 1 ms, as the
paper injects); request *results* are computed by actually executing the
application against the database through the ordinary ORM stack, so the
workload exercises the real code.

Closed-loop clients: each of ``clients_per_site`` clients per site issues
a request, waits for its response, and immediately issues the next one.

* Relaxed (PoR) mode — read-only requests execute locally with no
  coordination; effectful requests acquire a slot from the coordination
  service for their conflict class, execute, release, and replicate
  asynchronously.
* Strong-consistency mode — every request, including reads, acquires the
  single global slot (all pairs conflict).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..metrics.registry import inc as _metric_inc
from ..metrics.registry import observe as _metric_observe
from ..orm import Database
from ..web import Application
from .coordination import CoordinationService
from .faults import FaultConfig
from .metrics import Metrics, RunSummary
from .simulator import Simulator
from .workload import Workload


class RestrictionSetSubscription:
    """A versioned, thread-safe handoff of restriction sets from a
    publisher (the verification daemon) to a running deployment.

    The publisher calls :meth:`publish` with a new endpoint-level
    conflict table whenever a re-verification changed the verdicts; a
    deployment polls :attr:`version` between simulation events and swaps
    the active table atomically when it trails (hot reload — no
    restart).  Readers always see a complete table: the version is
    bumped under the same lock that replaces the table, and
    :meth:`current` returns both together."""

    def __init__(
        self,
        conflict_table: set[frozenset[str]] | None = None,
        version: int = 0,
    ):
        self._lock = threading.Lock()
        self._version = version
        self._table: set[frozenset[str]] = set(conflict_table or ())

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def publish(
        self,
        conflict_table: set[frozenset[str]],
        version: int | None = None,
    ) -> int:
        """Install a new conflict table; returns the new version.
        ``version`` pins the publisher's own counter (the daemon keeps
        per-app versions); omitted, the subscription self-increments."""
        with self._lock:
            self._version = (self._version + 1 if version is None
                             else version)
            self._table = set(conflict_table)
            return self._version

    def current(self) -> tuple[int, set[frozenset[str]]]:
        """The active ``(version, conflict_table)``, copied atomically."""
        with self._lock:
            return self._version, set(self._table)


@dataclass
class DeploymentConfig:
    sites: int = 3
    clients_per_site: int = 4
    #: one-way network latency between distinct sites, ms (paper: 1 ms)
    wan_latency_ms: float = 1.0
    #: one-way latency to a colocated service, ms
    local_latency_ms: float = 0.05
    #: CPU time to execute one request at a web server, ms
    service_time_ms: float = 0.6
    duration_ms: float = 500.0
    warmup_ms: float = 100.0
    #: site index hosting the coordination service, or ``None`` for a
    #: dedicated coordination node one WAN hop from every site
    coordinator_site: int | None = None
    #: coordination lease duration, ms; 0 disables leasing.  With leases
    #: on, a grant held past this deadline is reclaimed so a crashed
    #: holder cannot block its conflict class indefinitely.
    lease_ms: float = 0.0
    #: how often (simulated ms) a deployment checks its restriction-set
    #: subscription for a newer version (hot reload)
    reload_poll_ms: float = 5.0


class Deployment:
    """Runs one workload against one coordination mode."""

    def __init__(
        self,
        app: Application,
        db: Database,
        workload: Workload,
        conflict_table: set[frozenset[str]],
        *,
        strong: bool = False,
        config: DeploymentConfig | None = None,
        faults: FaultConfig | None = None,
        subscription: RestrictionSetSubscription | None = None,
    ):
        self.app = app
        self.db = db
        self.workload = workload
        self.config = config or DeploymentConfig()
        self.faults = faults
        self.subscription = subscription
        self.restriction_version = 0
        self.restriction_reloads = 0
        if subscription is not None:
            # Adopt whatever the publisher has already produced; later
            # versions arrive through the reload tick, mid-run.
            version, table = subscription.current()
            if version:
                conflict_table = table
                self.restriction_version = version
        self.coordinator = CoordinationService(
            conflict_table, strong=strong, lease_ms=self.config.lease_ms
        )
        self.sim = Simulator()
        self.metrics = Metrics(warmup_ms=self.config.warmup_ms)
        self.replication_events = 0

    # ------------------------------------------------------------------

    def _coord_latency(self, site: int) -> float:
        if site == self.config.coordinator_site:
            return self.config.local_latency_ms
        return self.config.wan_latency_ms

    def _needs_coordination(self, is_write: bool) -> bool:
        return self.coordinator.strong or is_write

    def _coordinator_node(self) -> int:
        # A dedicated coordination node shares site 0's partition side for
        # reachability purposes (partition windows only name real sites).
        site = self.config.coordinator_site
        return site if site is not None else 0

    def _partitioned_from_coordinator(self, site: int) -> bool:
        if self.faults is None or site == self._coordinator_node():
            return False
        return self.faults.partitioned(site, self._coordinator_node(), self.sim.now)

    def _lease_tick(self) -> None:
        self.coordinator.expire(self.sim.now)
        if self.sim.now < self.config.duration_ms:
            self.sim.schedule(max(self.coordinator.lease_ms / 2, 0.5), self._lease_tick)

    def _reload_tick(self) -> None:
        """Hot-reload the restriction set when the subscription moved.

        Runs as an ordinary simulation event, so the swap is atomic with
        respect to request processing: no request observes a half-updated
        table, and in-flight grants finish under the table they were
        issued with (the coordination service keys conflicts at grant
        time)."""
        if self.subscription is not None:
            version = self.subscription.version
            if version != self.restriction_version:
                version, table = self.subscription.current()
                self.coordinator.conflict_table = table
                self.restriction_version = version
                self.restriction_reloads += 1
                _metric_inc("noctua_service_reloads_total")
        if self.sim.now < self.config.duration_ms:
            self.sim.schedule(max(self.config.reload_poll_ms, 0.5),
                              self._reload_tick)

    def run(self) -> RunSummary:
        if self.faults is not None:
            for w in self.faults.coord_outages:
                self.sim.schedule(w.start, lambda: self.coordinator.set_available(False))
                self.sim.schedule(w.end, lambda: self.coordinator.set_available(True))
            for w in self.faults.partitions:
                overlap = min(w.end, self.config.duration_ms) - min(w.start, self.config.duration_ms)
                self.metrics.faults.partition_ms += max(0.0, overlap)
        if self.coordinator.lease_ms:
            self.sim.schedule(self.coordinator.lease_ms, self._lease_tick)
        if self.subscription is not None:
            self.sim.schedule(max(self.config.reload_poll_ms, 0.5),
                              self._reload_tick)
        for site in range(self.config.sites):
            for _ in range(self.config.clients_per_site):
                self._next_client_request(site)
        self.sim.run_until(self.config.duration_ms)
        self.metrics.faults.lease_expiries = self.coordinator.lease_expiries
        mode = "SC" if self.coordinator.strong else f"{int(self.workload.write_ratio * 100)}%"
        return RunSummary(
            app=self.app.name,
            mode=mode,
            throughput_rps=self.metrics.throughput(self.config.duration_ms),
            avg_latency_ms=self.metrics.avg_latency_ms(),
            p95_latency_ms=self.metrics.percentile_latency_ms(0.95),
            requests=len(self.metrics.completions),
            error_fraction=self.metrics.error_fraction(),
            faults=self.metrics.faults,
        )

    # ------------------------------------------------------------------

    def _next_client_request(self, site: int) -> None:
        spec = self.workload.next_request()
        start = self.sim.now

        def execute_and_complete(extra_delay: float, release=None) -> None:
            def finish() -> None:
                response = self.app.handle(spec.to_http(), self.db)
                if release is not None:
                    release()
                if spec.is_write:
                    self._replicate(site)
                self._complete(site, start, spec.is_write, response.ok)

            self.sim.schedule(extra_delay + self.config.service_time_ms, finish)

        if not self._needs_coordination(spec.is_write):
            execute_and_complete(0.0)
            return

        lat = self._coord_latency(site)

        if self._partitioned_from_coordinator(site):
            # Conservative degradation: a restricted write whose site
            # cannot reach the coordinator fails fast (after a detection
            # round trip) rather than executing unordered.
            self.metrics.faults.coord_failures += 1
            self.sim.schedule(
                2 * self.config.wan_latency_ms,
                lambda: self._complete(site, start, spec.is_write, False),
            )
            return

        def on_grant(ticket: int) -> None:
            # The grant travels back to the originating site, the request
            # executes there, then the slot is released at the coordinator.
            def release() -> None:
                self.sim.schedule(
                    lat,
                    lambda: self.coordinator.release(ticket, now=self.sim.now),
                )

            execute_and_complete(lat, release)

        def ask() -> None:
            ticket = self.coordinator.request(
                _endpoint_of(self.app, spec),
                spec.lock_params(),
                on_grant,
                now=self.sim.now,
            )
            if ticket is None:
                # Coordination outage: refuse fast, with the reason
                # recorded by the service, instead of queueing forever.
                self.metrics.faults.coord_failures += 1
                self.sim.schedule(
                    lat, lambda: self._complete(site, start, spec.is_write, False)
                )

        self.sim.schedule(lat, ask)

    def _replicate(self, origin: int) -> None:
        """Asynchronous effect propagation to the remote replicas."""
        sent_at = self.sim.now
        for site in range(self.config.sites):
            if site == origin:
                continue

            def arrived() -> None:
                self.replication_events += 1
                _metric_observe("noctua_georep_replication_lag_ms",
                                self.sim.now - sent_at)

            self.sim.schedule(self.config.wan_latency_ms, arrived)

    def _complete(self, site: int, start: float, is_write: bool, ok: bool) -> None:
        self.metrics.record(self.sim.now, self.sim.now - start, is_write, ok)
        if self.sim.now < self.config.duration_ms:
            self._next_client_request(site)


def _endpoint_of(app: Application, spec) -> str:
    try:
        pattern, _ = app.resolver.resolve(spec.path)
        return pattern.view_name
    except Exception:
        return spec.path


def run_modes(
    app_builder,
    workload_builder,
    conflict_table: set[frozenset[str]],
    *,
    write_ratios: tuple[float, ...] = (0.5, 0.3, 0.15),
    config: DeploymentConfig | None = None,
    seed: int = 7,
) -> list[RunSummary]:
    """The Figure 10/11 sweep: SC plus one run per write ratio."""
    summaries: list[RunSummary] = []
    # Strong consistency baseline (50% writes, all requests coordinated).
    app = app_builder()
    db = Database(app.registry)
    workload = workload_builder(app, db, 0.5, seed)
    summaries.append(
        Deployment(app, db, workload, conflict_table, strong=True,
                   config=config).run()
    )
    for ratio in write_ratios:
        app = app_builder()
        db = Database(app.registry)
        workload = workload_builder(app, db, ratio, seed)
        summaries.append(
            Deployment(app, db, workload, conflict_table, strong=False,
                       config=config).run()
        )
    return summaries
