"""Workload generators for the end-to-end experiments (paper §6.5).

Operations are "initiated by sending random HTTP requests continuously";
the write-ratio knob selects what fraction of requests update system state.
Each application gets a seeded entity pool and a request generator drawing
from read-only and effectful endpoint templates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..orm import Database
from ..web import Application, HttpRequest


@dataclass(frozen=True)
class RequestSpec:
    """One generated request."""

    path: str
    method: str
    params: dict
    is_write: bool

    def to_http(self) -> HttpRequest:
        if self.method == "POST":
            return HttpRequest("POST", self.path, POST=self.params)
        return HttpRequest(self.method, self.path, GET=self.params)

    def lock_params(self) -> dict:
        """Parameters the coordination service keys conflicts on: both the
        request body and the identifiers embedded in the path."""
        out = dict(self.params)
        for i, segment in enumerate(self.path.strip("/").split("/")):
            if segment.isdigit():
                out[f"url{i}"] = segment
        return out


class Workload:
    """A seeded generator of application requests."""

    def __init__(
        self,
        app: Application,
        db: Database,
        write_ratio: float,
        seed: int = 7,
    ):
        self.app = app
        self.db = db
        self.write_ratio = write_ratio
        self.rng = random.Random(seed)
        self.reads: list[Callable[[random.Random], RequestSpec]] = []
        self.writes: list[Callable[[random.Random], RequestSpec]] = []

    def next_request(self) -> RequestSpec:
        if self.rng.random() < self.write_ratio:
            maker = self.rng.choice(self.writes)
        else:
            maker = self.rng.choice(self.reads)
        return maker(self.rng)


def zhihu_workload(app: Application, db: Database, write_ratio: float,
                   seed: int = 7) -> Workload:
    """Seed the Q&A site and build its request mix."""
    registry = app.registry
    Profile = registry.get_model("Profile")
    Question = registry.get_model("Question")
    Answer = registry.get_model("Answer")

    with db.activate():
        handles = [f"user{i}" for i in range(12)]
        profiles = [Profile.objects.create(handle=h) for h in handles]
        questions = []
        answers = []
        for i in range(15):
            author = profiles[i % len(profiles)]
            question = Question.objects.create(
                title=f"q{i}", body="...", author=author
            )
            questions.append(question.pk)
            answer = Answer.objects.create(
                question=question, author=profiles[(i + 1) % len(profiles)],
                body="a",
            )
            answers.append(answer.pk)

    wl = Workload(app, db, write_ratio, seed)
    counter = {"n": 0}

    def fresh_suffix() -> int:
        counter["n"] += 1
        return counter["n"]

    wl.reads = [
        lambda rng: RequestSpec(
            f"/q/{rng.choice(questions)}", "GET", {}, False),
        lambda rng: RequestSpec(
            f"/q/{rng.choice(questions)}/answers", "GET", {}, False),
        lambda rng: RequestSpec(
            f"/q/{rng.choice(questions)}/hot", "GET", {}, False),
        lambda rng: RequestSpec(
            f"/u/{rng.choice(handles)}", "GET", {}, False),
        lambda rng: RequestSpec(
            f"/u/{rng.choice(handles)}/unread", "GET", {}, False),
    ]
    wl.writes = [
        lambda rng: RequestSpec(
            f"/u/{rng.choice(handles)}/ask",
            "POST", {"title": f"t{fresh_suffix()}", "body": "b"}, True),
        lambda rng: RequestSpec(
            f"/u/{rng.choice(handles)}/answer/{rng.choice(questions)}",
            "POST", {"body": "a"}, True),
        lambda rng: (lambda q: RequestSpec(
            f"/u/{rng.choice(handles)}/follow-q/{q}",
            "POST", {"question_key": f"{q}#{fresh_suffix()}"}, True))(
                rng.choice(questions)),
        lambda rng: RequestSpec(
            f"/u/{rng.choice(handles)}/upvote/{rng.choice(answers)}",
            "POST", {}, True),
        lambda rng: RequestSpec(
            f"/u/{rng.choice(handles)}/comment-q/{rng.choice(questions)}",
            "POST", {"text": "c"}, True),
    ]
    return wl


def postgraduation_workload(app: Application, db: Database, write_ratio: float,
                            seed: int = 7) -> Workload:
    """Seed the management system and build its request mix."""
    registry = app.registry
    Department = registry.get_model("Department")
    Supervisor = registry.get_model("Supervisor")
    Candidate = registry.get_model("Candidate")

    with db.activate():
        departments = [
            Department.objects.create(name=f"dept{i}").pk for i in range(4)
        ]
        supervisors = []
        for i in range(8):
            supervisor = Supervisor.objects.create(
                name=f"sup{i}",
                email=f"sup{i}@u.edu",
                department_id=departments[i % len(departments)],
                capacity=1000,
            )
            supervisors.append(supervisor.pk)
        candidates = []
        for i in range(20):
            candidate = Candidate.objects.create(
                name=f"cand{i}", email=f"cand{i}@u.edu"
            )
            candidates.append(candidate.pk)

    wl = Workload(app, db, write_ratio, seed)
    counter = {"n": 0}

    def fresh_suffix() -> int:
        counter["n"] += 1
        return counter["n"]

    wl.reads = [
        lambda rng: RequestSpec("/departments", "GET", {}, False),
        lambda rng: RequestSpec(
            f"/supervisors/{rng.choice(supervisors)}/load", "GET", {}, False),
        lambda rng: RequestSpec(
            f"/candidates/{rng.choice(candidates)}", "GET", {}, False),
        lambda rng: RequestSpec("/messages/unhandled", "GET", {}, False),
        lambda rng: RequestSpec("/courses/open", "GET", {}, False),
    ]
    wl.writes = [
        lambda rng: RequestSpec(
            "/candidates/register",
            "POST",
            {"name": "x", "email": f"new{fresh_suffix()}@u.edu"},
            True),
        lambda rng: RequestSpec(
            f"/candidates/{rng.choice(candidates)}/assign/"
            f"{rng.choice(supervisors)}",
            "POST", {}, True),
        lambda rng: RequestSpec(
            f"/candidates/{rng.choice(candidates)}/thesis",
            "POST", {"title": f"thesis{fresh_suffix()}"}, True),
        lambda rng: RequestSpec(
            "/contact", "POST", {"sender": "s", "body": "b"}, True),
        lambda rng: RequestSpec(
            "/announcements/post", "POST", {"title": "t", "body": "b"}, True),
    ]
    return wl
