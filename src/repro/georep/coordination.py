"""The centralized coordination service (paper §6.5).

The service maintains a list of currently active operations; an operation
is allowed to proceed when no *conflicting* operation is active.  Conflicts
come from the verifier's restriction set, lifted to HTTP endpoints
(``operation_conflict_table``): this mirrors the paper's simplification of
coordinating on endpoints and request parameters rather than exact code
paths.

Two granularities are supported:

* ``by_endpoint`` — two requests conflict if their endpoint pair is
  restricted;
* parameter-aware (default) — additionally, the requests must share at
  least one parameter value (two payments between unrelated accounts do
  not synchronize), which is how a real deployment keys its locks.

``strong=True`` models the strong-consistency baseline the way modern
leader-serialized deployments behave: *every* request — including
read-only ones — is routed through the ordering service and pays the
coordination round trip (ordering pipelines, so non-conflicting requests
still execute concurrently), while conflicting updates additionally
serialize exactly as under PoR.  Relaxed mode differs in that read-only
requests skip coordination entirely and execute against the local replica
(paper §6.5: "read-only transactions are executed locally immediately
without any coordination").

Grants are **leases**: with a nonzero ``lease_ms`` a grant expires
``lease_ms`` after it was issued, so a crashed holder cannot wedge every
conflicting request forever — :meth:`expire` reclaims overdue grants and
promotes waiters, which is how the chaos layer keeps the service live
across site crashes.  During an **outage** (:meth:`set_available`) the
service fails requests fast with a recorded reason instead of queueing
them into a dead service.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..metrics.registry import observe as _metric_observe


@dataclass
class ActiveOp:
    ticket: int
    endpoint: str
    params: frozenset
    #: lease deadline; grants without leases never expire
    expires_at: float = math.inf
    #: simulated time the request entered the service (for lease-wait
    #: accounting; grants report ``grant_time - requested_at``)
    requested_at: float = 0.0


@dataclass
class CoordinationService:
    """Grants execution slots so that restricted pairs never overlap."""

    conflict_table: set[frozenset[str]]
    strong: bool = False
    by_endpoint: bool = False
    #: lease duration for grants; 0 disables leasing (grants live until
    #: released, the pre-fault-tolerance behavior)
    lease_ms: float = 0.0

    _active: dict[int, ActiveOp] = field(default_factory=dict)
    _waiting: list[tuple[ActiveOp, Callable[[], None]]] = field(default_factory=list)
    _tickets: int = 0
    _available: bool = True
    #: reasons for fail-fast refusals, newest last
    failures: list[str] = field(default_factory=list)
    #: grants reclaimed because their lease timed out
    lease_expiries: int = 0

    def conflicts(self, a: ActiveOp, b: ActiveOp) -> bool:
        if frozenset((a.endpoint, b.endpoint)) not in self.conflict_table:
            return False
        if self.by_endpoint:
            return True
        return bool(a.params & b.params)

    # ------------------------------------------------------------------

    @property
    def available(self) -> bool:
        return self._available

    def set_available(self, up: bool) -> None:
        """Toggle an outage window: while down, requests fail fast."""
        self._available = up

    def request(
        self,
        endpoint: str,
        params: dict,
        granted: Callable[[int], None],
        *,
        now: float = 0.0,
    ) -> int | None:
        """Ask for a slot; ``granted(ticket)`` fires (possibly immediately)
        when no conflicting operation is active.  Returns the ticket, or
        ``None`` — with the reason recorded — when the service is down
        (callers must degrade rather than block on a dead service)."""
        if not self._available:
            self.failures.append(
                f"coordination unavailable: refused {endpoint} fast"
            )
            return None
        self._tickets += 1
        op = ActiveOp(
            self._tickets,
            endpoint,
            frozenset(f"{k}={v}" for k, v in params.items()),
            requested_at=now,
        )
        if self._clear_to_run(op):
            self._grant(op, granted, now)
        else:
            self._waiting.append((op, granted))
        return op.ticket

    def _grant(self, op: ActiveOp, granted: Callable[[int], None], now: float) -> None:
        # The lease clock starts at grant time, not request time: a long
        # queue wait must not eat into the holder's execution window.
        op.expires_at = now + self.lease_ms if self.lease_ms else math.inf
        self._active[op.ticket] = op
        _metric_observe("noctua_georep_lease_wait_ms",
                        max(0.0, now - op.requested_at))
        granted(op.ticket)

    def _clear_to_run(self, op: ActiveOp) -> bool:
        return all(not self.conflicts(op, other) for other in self._active.values())

    def release(self, ticket: int, *, now: float = 0.0) -> None:
        self._active.pop(ticket, None)
        # Releasing a still-queued ticket cancels the request.
        self._waiting = [(op, g) for op, g in self._waiting if op.ticket != ticket]
        self._promote_waiters(now)

    def expire(self, now: float) -> list[int]:
        """Reclaim grants whose lease has lapsed (the holder is presumed
        crashed) and promote waiters.  Returns the expired tickets."""
        expired = [
            ticket for ticket, op in self._active.items()
            if op.expires_at <= now
        ]
        for ticket in expired:
            self._active.pop(ticket)
            self.lease_expiries += 1
        if expired:
            self._promote_waiters(now)
        return expired

    def _promote_waiters(self, now: float) -> None:
        # Grant as many waiters as have become unblocked, FIFO.
        still_waiting = []
        for op, granted in self._waiting:
            if self._clear_to_run(op):
                self._grant(op, granted, now)
            else:
                still_waiting.append((op, granted))
        self._waiting = still_waiting

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)
