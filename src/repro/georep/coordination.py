"""The centralized coordination service (paper §6.5).

The service maintains a list of currently active operations; an operation
is allowed to proceed when no *conflicting* operation is active.  Conflicts
come from the verifier's restriction set, lifted to HTTP endpoints
(``operation_conflict_table``): this mirrors the paper's simplification of
coordinating on endpoints and request parameters rather than exact code
paths.

Two granularities are supported:

* ``by_endpoint`` — two requests conflict if their endpoint pair is
  restricted;
* parameter-aware (default) — additionally, the requests must share at
  least one parameter value (two payments between unrelated accounts do
  not synchronize), which is how a real deployment keys its locks.

``strong=True`` models the strong-consistency baseline the way modern
leader-serialized deployments behave: *every* request — including
read-only ones — is routed through the ordering service and pays the
coordination round trip (ordering pipelines, so non-conflicting requests
still execute concurrently), while conflicting updates additionally
serialize exactly as under PoR.  Relaxed mode differs in that read-only
requests skip coordination entirely and execute against the local replica
(paper §6.5: "read-only transactions are executed locally immediately
without any coordination").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class ActiveOp:
    ticket: int
    endpoint: str
    params: frozenset


@dataclass
class CoordinationService:
    """Grants execution slots so that restricted pairs never overlap."""

    conflict_table: set[frozenset[str]]
    strong: bool = False
    by_endpoint: bool = False

    _active: dict[int, ActiveOp] = field(default_factory=dict)
    _waiting: list[tuple[ActiveOp, Callable[[], None]]] = field(default_factory=list)
    _tickets: int = 0

    def conflicts(self, a: ActiveOp, b: ActiveOp) -> bool:
        if frozenset((a.endpoint, b.endpoint)) not in self.conflict_table:
            return False
        if self.by_endpoint:
            return True
        return bool(a.params & b.params)

    def request(
        self, endpoint: str, params: dict, granted: Callable[[int], None]
    ) -> int:
        """Ask for a slot; ``granted(ticket)`` fires (possibly immediately)
        when no conflicting operation is active.  Returns the ticket."""
        self._tickets += 1
        op = ActiveOp(
            self._tickets,
            endpoint,
            frozenset(f"{k}={v}" for k, v in params.items()),
        )
        if self._clear_to_run(op):
            self._active[op.ticket] = op
            granted(op.ticket)
        else:
            self._waiting.append((op, granted))
        return op.ticket

    def _clear_to_run(self, op: ActiveOp) -> bool:
        return all(not self.conflicts(op, other) for other in self._active.values())

    def release(self, ticket: int) -> None:
        self._active.pop(ticket, None)
        # Releasing a still-queued ticket cancels the request.
        self._waiting = [(op, g) for op, g in self._waiting if op.ticket != ticket]
        # Grant as many waiters as have become unblocked, FIFO.
        still_waiting = []
        for op, granted in self._waiting:
            if self._clear_to_run(op):
                self._active[op.ticket] = op
                granted(op.ticket)
            else:
                still_waiting.append((op, granted))
        self._waiting = still_waiting

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)
