"""PostGraduation data model: 8 models, 4 relations."""

from __future__ import annotations

from types import SimpleNamespace

from ...orm import (
    BooleanField,
    CASCADE,
    DateTimeField,
    ForeignKey,
    Model,
    PROTECT,
    PositiveIntegerField,
    Registry,
    SET_NULL,
    TextField,
)


def build_models(registry: Registry) -> SimpleNamespace:
    with registry.use():

        class Department(Model):
            name = TextField(unique=True)
            building = TextField(default="")

        class Supervisor(Model):
            name = TextField(default="")
            email = TextField(unique=True)
            department = ForeignKey(Department, on_delete=CASCADE)
            capacity = PositiveIntegerField(default=3)

        class Candidate(Model):
            name = TextField(default="")
            email = TextField(unique=True)
            supervisor = ForeignKey(
                Supervisor, on_delete=SET_NULL, null=True,
                related_name="candidates",
            )
            enrolled = DateTimeField(auto_now_add=True)
            active = BooleanField(default=True)

        class Thesis(Model):
            candidate = ForeignKey(Candidate, on_delete=CASCADE)
            title = TextField(default="")
            status = TextField(
                default="draft",
                choices=("draft", "submitted", "approved", "rejected"),
            )
            submitted = DateTimeField(null=True)

        class Scholarship(Model):
            candidate = ForeignKey(Candidate, on_delete=PROTECT)
            amount = PositiveIntegerField(default=0)
            active = BooleanField(default=True)

        class Course(Model):
            code = TextField(unique=True)
            title = TextField(default="")
            archived = BooleanField(default=False)

        class Announcement(Model):
            title = TextField(default="")
            body = TextField(default="")
            posted = DateTimeField(auto_now_add=True)
            pinned = BooleanField(default=False)

        class ContactMessage(Model):
            sender = TextField(default="")
            body = TextField(default="")
            received = DateTimeField(auto_now_add=True)
            handled = BooleanField(default=False)

    return SimpleNamespace(
        Department=Department,
        Supervisor=Supervisor,
        Candidate=Candidate,
        Thesis=Thesis,
        Scholarship=Scholarship,
        Course=Course,
        Announcement=Announcement,
        ContactMessage=ContactMessage,
    )
