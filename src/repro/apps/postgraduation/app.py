"""PostGraduation application assembly."""

from __future__ import annotations

import os

from ...orm import Registry
from ...web import Application
from .models import build_models
from .views import build_views


def build_app() -> Application:
    """Construct a fresh PostGraduation application instance."""
    registry = Registry("postgraduation")
    models = build_models(registry)
    patterns = build_views(models)
    return Application("postgraduation", registry, patterns, source_loc=_loc())


def _loc() -> int:
    """Lines of application code (reported in Table 4)."""
    here = os.path.dirname(__file__)
    total = 0
    for fname in os.listdir(here):
        if fname.endswith(".py"):
            with open(os.path.join(here, fname)) as f:
                total += sum(1 for _ in f)
    return total
