"""PostGraduation HTTP endpoints."""

from __future__ import annotations

from types import SimpleNamespace

from ...web import HttpResponse, JsonResponse, get_object_or_404, path


def build_views(m: SimpleNamespace) -> list:
    # -- read-only -------------------------------------------------------

    def department_list(request):
        return JsonResponse(m.Department.objects.count())

    def supervisor_load(request, pk):
        supervisor = get_object_or_404(m.Supervisor, pk=pk)
        return JsonResponse(supervisor.candidates.count())

    def candidate_detail(request, pk):
        candidate = get_object_or_404(m.Candidate, pk=pk)
        return JsonResponse({"name": candidate.name, "active": candidate.active})

    def unhandled_messages(request):
        return JsonResponse(
            m.ContactMessage.objects.filter(handled=False).count()
        )

    def open_courses(request):
        return JsonResponse(m.Course.objects.filter(archived=False).count())

    # -- administration ----------------------------------------------------

    def create_department(request):
        department = m.Department.objects.create(name=request.POST["name"])
        return JsonResponse({"pk": department.pk}, status=201)

    def hire_supervisor(request, department_id):
        department = get_object_or_404(m.Department, pk=department_id)
        supervisor = m.Supervisor.objects.create(
            name=request.POST["name"],
            email=request.POST["email"],
            department=department,
        )
        return JsonResponse({"pk": supervisor.pk}, status=201)

    def register_candidate(request):
        candidate = m.Candidate.objects.create(
            name=request.POST["name"],
            email=request.POST["email"],
        )
        return JsonResponse({"pk": candidate.pk}, status=201)

    def assign_supervisor(request, candidate_id, supervisor_id):
        candidate = get_object_or_404(m.Candidate, pk=candidate_id)
        supervisor = get_object_or_404(m.Supervisor, pk=supervisor_id)
        # Capacity is an application invariant checked on assignment.
        if supervisor.candidates.count() >= supervisor.capacity:
            return HttpResponse("supervisor at capacity", status=400)
        candidate.supervisor = supervisor
        candidate.save()
        return HttpResponse(status=200)

    def unassign_supervisor(request, candidate_id):
        candidate = get_object_or_404(m.Candidate, pk=candidate_id)
        candidate.supervisor = None
        candidate.save()
        return HttpResponse(status=200)

    def deactivate_candidate(request, candidate_id):
        candidate = get_object_or_404(m.Candidate, pk=candidate_id)
        candidate.active = False
        candidate.save()
        return HttpResponse(status=200)

    def delete_candidate(request, candidate_id):
        candidate = get_object_or_404(m.Candidate, pk=candidate_id)
        candidate.delete()  # PROTECTed by active scholarships
        return HttpResponse(status=204)

    # -- theses -----------------------------------------------------------

    def submit_thesis(request, candidate_id):
        candidate = get_object_or_404(m.Candidate, pk=candidate_id)
        thesis = m.Thesis.objects.create(
            candidate=candidate,
            title=request.POST["title"],
            status="submitted",
        )
        return JsonResponse({"pk": thesis.pk}, status=201)

    def review_thesis(request, thesis_id):
        thesis = get_object_or_404(m.Thesis, pk=thesis_id)
        if request.POST["verdict"] == "approve":
            thesis.status = "approved"
        else:
            thesis.status = "rejected"
        thesis.save()
        return HttpResponse(status=200)

    def withdraw_thesis(request, thesis_id):
        m.Thesis.objects.filter(pk=thesis_id).delete()
        return HttpResponse(status=204)

    # -- scholarships -------------------------------------------------------

    def award_scholarship(request, candidate_id):
        candidate = get_object_or_404(m.Candidate, pk=candidate_id)
        scholarship = m.Scholarship.objects.create(
            candidate=candidate,
            amount=request.post_int("amount"),
        )
        return JsonResponse({"pk": scholarship.pk}, status=201)

    def suspend_scholarship(request, scholarship_id):
        scholarship = get_object_or_404(m.Scholarship, pk=scholarship_id)
        scholarship.active = False
        scholarship.save()
        return HttpResponse(status=200)

    # -- courses ------------------------------------------------------------

    def create_course(request):
        course = m.Course.objects.create(
            code=request.POST["code"], title=request.POST["title"]
        )
        return JsonResponse({"pk": course.pk}, status=201)

    def archive_course(request, course_id):
        m.Course.objects.filter(pk=course_id).update(archived=True)
        return HttpResponse(status=200)

    # -- announcements & contact ---------------------------------------------

    def post_announcement(request):
        announcement = m.Announcement.objects.create(
            title=request.POST["title"], body=request.POST["body"]
        )
        return JsonResponse({"pk": announcement.pk}, status=201)

    def pin_announcement(request, announcement_id):
        m.Announcement.objects.filter(pk=announcement_id).update(pinned=True)
        return HttpResponse(status=200)

    def delete_announcement(request, announcement_id):
        m.Announcement.objects.filter(pk=announcement_id).delete()
        return HttpResponse(status=204)

    def contact(request):
        message = m.ContactMessage.objects.create(
            sender=request.POST["sender"], body=request.POST["body"]
        )
        return JsonResponse({"pk": message.pk}, status=201)

    def handle_message(request, message_id):
        message = get_object_or_404(m.ContactMessage, pk=message_id)
        message.handled = True
        message.save()
        return HttpResponse(status=200)

    return [
        path("departments", department_list, name="DepartmentList"),
        path("supervisors/<int:pk>/load", supervisor_load, name="SupervisorLoad"),
        path("candidates/<int:pk>", candidate_detail, name="CandidateDetail"),
        path("messages/unhandled", unhandled_messages, name="UnhandledMessages"),
        path("courses/open", open_courses, name="OpenCourses"),
        path("departments/create", create_department, name="CreateDepartment"),
        path("departments/<int:department_id>/hire", hire_supervisor,
             name="HireSupervisor"),
        path("candidates/register", register_candidate, name="RegisterCandidate"),
        path("candidates/<int:candidate_id>/assign/<int:supervisor_id>",
             assign_supervisor, name="AssignSupervisor"),
        path("candidates/<int:candidate_id>/unassign", unassign_supervisor,
             name="UnassignSupervisor"),
        path("candidates/<int:candidate_id>/deactivate", deactivate_candidate,
             name="DeactivateCandidate"),
        path("candidates/<int:candidate_id>/delete", delete_candidate,
             name="DeleteCandidate"),
        path("candidates/<int:candidate_id>/thesis", submit_thesis,
             name="SubmitThesis"),
        path("theses/<int:thesis_id>/review", review_thesis, name="ReviewThesis"),
        path("theses/<int:thesis_id>/withdraw", withdraw_thesis,
             name="WithdrawThesis"),
        path("candidates/<int:candidate_id>/scholarship", award_scholarship,
             name="AwardScholarship"),
        path("scholarships/<int:scholarship_id>/suspend", suspend_scholarship,
             name="SuspendScholarship"),
        path("courses/create", create_course, name="CreateCourse"),
        path("courses/<int:course_id>/archive", archive_course,
             name="ArchiveCourse"),
        path("announcements/post", post_announcement, name="PostAnnouncement"),
        path("announcements/<int:announcement_id>/pin", pin_announcement,
             name="PinAnnouncement"),
        path("announcements/<int:announcement_id>/delete", delete_announcement,
             name="DeleteAnnouncement"),
        path("contact", contact, name="Contact"),
        path("messages/<int:message_id>/handle", handle_message,
             name="HandleMessage"),
    ]
