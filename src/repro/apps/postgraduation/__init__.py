"""PostGraduation — a miniature of the PostGraduation management system
(paper §6.1): departments, supervisors, candidates, theses, scholarships,
courses, announcements and a contact box.

Table 4 of the paper reports 8 models, 4 relations, 40 code paths of which
19 effectful.  This application deliberately uses **no order-related
primitives**, making it the subject of the order-decoupling ablation
(paper Table 7 / Figure 9).
"""

from .app import build_app

__all__ = ["build_app"]
