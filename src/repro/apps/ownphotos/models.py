"""OwnPhotos data model: 12 models, 46 relations."""

from __future__ import annotations

from types import SimpleNamespace

from ...orm import (
    BooleanField,
    CASCADE,
    DateTimeField,
    ForeignKey,
    IntegerField,
    ManyToManyField,
    Model,
    PositiveIntegerField,
    Registry,
    SET_NULL,
    TextField,
)


def build_models(registry: Registry) -> SimpleNamespace:
    with registry.use():

        class User(Model):
            username = TextField(unique=True)
            scan_directory = TextField(default="")
            favorites = ManyToManyField("Photo", related_name="favorited_by")
            friends = ManyToManyField("User", related_name="friended_by")
            blocked = ManyToManyField("User", related_name="blocked_by")

        class Photo(Model):
            image_hash = TextField(unique=True)
            caption = TextField(default="")
            rating = IntegerField(default=0, choices=(0, 1, 2, 3, 4, 5))
            hidden = BooleanField(default=False)
            video = BooleanField(default=False)
            added = DateTimeField(auto_now_add=True)
            owner = ForeignKey(User, on_delete=CASCADE)
            shared_to = ManyToManyField(User, related_name="shared_photos")
            liked_by = ManyToManyField(User, related_name="liked_photos")
            similar = ManyToManyField("Photo", related_name="similar_of")

        class Person(Model):
            name = TextField(default="")
            kind = TextField(default="USER", choices=("USER", "CLUSTER", "UNKNOWN"))
            cover_photo = ForeignKey(Photo, on_delete=SET_NULL, null=True)
            created_by = ForeignKey(User, on_delete=SET_NULL, null=True)
            key_face = ForeignKey("Face", on_delete=SET_NULL, null=True)

        class Face(Model):
            photo = ForeignKey(Photo, on_delete=CASCADE)
            person = ForeignKey(Person, on_delete=SET_NULL, null=True)
            tagged_by = ForeignKey(User, on_delete=SET_NULL, null=True)
            verified_by = ForeignKey(User, on_delete=SET_NULL, null=True)
            confidence = IntegerField(default=0)

        class Tag(Model):
            name = TextField(unique=True)
            created_by = ForeignKey(User, on_delete=SET_NULL, null=True)
            photos = ManyToManyField(Photo, related_name="tags")

        class Comment(Model):
            photo = ForeignKey(Photo, on_delete=CASCADE)
            author = ForeignKey(User, on_delete=CASCADE)
            text = TextField(default="")
            mentions = ManyToManyField(User, related_name="mentioned_in")

        class AlbumAuto(Model):
            title = TextField(default="")
            owner = ForeignKey(User, on_delete=CASCADE)
            photos = ManyToManyField(Photo, related_name="albums_auto")
            shared_to = ManyToManyField(User, related_name="shared_albums_auto")
            cover = ForeignKey(Photo, on_delete=SET_NULL, null=True,
                               related_name="cover_of_auto")
            people = ManyToManyField(Person, related_name="albums_auto")

        class AlbumDate(Model):
            date = DateTimeField(default=0)
            owner = ForeignKey(User, on_delete=CASCADE)
            photos = ManyToManyField(Photo, related_name="albums_date")
            shared_to = ManyToManyField(User, related_name="shared_albums_date")
            cover = ForeignKey(Photo, on_delete=SET_NULL, null=True,
                               related_name="cover_of_date")
            people = ManyToManyField(Person, related_name="albums_date")

        class AlbumUser(Model):
            title = TextField(default="")
            favorited = BooleanField(default=False)
            owner = ForeignKey(User, on_delete=CASCADE)
            photos = ManyToManyField(Photo, related_name="albums_user")
            shared_to = ManyToManyField(User, related_name="shared_albums_user")
            cover = ForeignKey(Photo, on_delete=SET_NULL, null=True,
                               related_name="cover_of_user")
            collaborators = ManyToManyField(User, related_name="collaborating_on")

        class AlbumPlace(Model):
            title = TextField(default="")
            owner = ForeignKey(User, on_delete=CASCADE)
            photos = ManyToManyField(Photo, related_name="albums_place")
            shared_to = ManyToManyField(User, related_name="shared_albums_place")
            cover = ForeignKey(Photo, on_delete=SET_NULL, null=True,
                               related_name="cover_of_place")

        class AlbumThing(Model):
            title = TextField(default="")
            owner = ForeignKey(User, on_delete=CASCADE)
            photos = ManyToManyField(Photo, related_name="albums_thing")
            shared_to = ManyToManyField(User, related_name="shared_albums_thing")
            tags = ManyToManyField(Tag, related_name="albums_thing")

        class LongRunningJob(Model):
            job_type = TextField(default="scan",
                                 choices=("scan", "train", "cluster", "generate"))
            finished = BooleanField(default=False)
            failed = BooleanField(default=False)
            progress = PositiveIntegerField(default=0)
            started_by = ForeignKey(User, on_delete=CASCADE)
            photos = ManyToManyField(Photo, related_name="jobs")
            album = ForeignKey(AlbumUser, on_delete=SET_NULL, null=True)

    return SimpleNamespace(
        User=User,
        Photo=Photo,
        Person=Person,
        Face=Face,
        Tag=Tag,
        Comment=Comment,
        AlbumAuto=AlbumAuto,
        AlbumDate=AlbumDate,
        AlbumUser=AlbumUser,
        AlbumPlace=AlbumPlace,
        AlbumThing=AlbumThing,
        LongRunningJob=LongRunningJob,
    )
