"""OwnPhotos — a miniature of the OwnPhotos self-hosted photo service
(paper §6.1), the largest evaluated application.

Users, photos, faces, people, tags, comments, five kinds of albums
(auto/date/user/place/thing) and long-running jobs; heavily
relation-centric (sharing, favourites, covers, collaborators).  Table 4 of
the paper reports 12 models, 46 relations and 545 code paths of which 120
are effectful — the bulk of them produced by REST-style viewsets whose
create/update actions branch on every optional request field.
"""

from .app import build_app

__all__ = ["build_app"]
