"""OwnPhotos HTTP endpoints.

Mixes three endpoint styles found in the real codebase:

* REST viewsets (runtime-generated closures, one per action);
* loop-generated per-album-kind management views (add/remove/share/cover) —
  more runtime view construction that no static analyzer could enumerate;
* hand-written function views for the photo/face/job workflows.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...analyzer.annotations import external
from ...soir.types import STRING
from ...web import (
    DestroyMixin,
    GenericViewSet,
    HttpResponse,
    JsonResponse,
    ListMixin,
    RetrieveMixin,
    UpdateMixin,
    get_object_or_404,
    path,
)


class _ManagedViewSet(
    ListMixin, RetrieveMixin, UpdateMixin, DestroyMixin, GenericViewSet
):
    """CRUD minus create (creation needs an owner, handled by custom views)."""


def build_views(m: SimpleNamespace) -> list:
    patterns: list = []

    # ------------------------------------------------------------------
    # Viewsets
    # ------------------------------------------------------------------

    viewset_specs = [
        (m.Photo, "photo", ("caption", "rating", "hidden", "video")),
        (m.Person, "person", ("name", "kind")),
        (m.Tag, "tag", ("name",)),
        (m.Comment, "comment", ("text",)),
        (m.AlbumUser, "albumuser", ("title", "favorited")),
        (m.AlbumAuto, "albumauto", ("title",)),
        (m.AlbumDate, "albumdate", ("date",)),
        (m.AlbumPlace, "albumplace", ("title",)),
        (m.AlbumThing, "albumthing", ("title",)),
        (m.LongRunningJob, "job", ("progress",)),
    ]
    for model_cls, base, vs_fields in viewset_specs:
        viewset = type(
            f"{model_cls.__name__}ViewSet",
            (_ManagedViewSet,),
            {"model": model_cls, "fields": vs_fields, "basename": base},
        )
        patterns.extend(viewset.urls())

    # ------------------------------------------------------------------
    # Users & social graph
    # ------------------------------------------------------------------

    def register_user(request):
        user = m.User.objects.create(username=request.POST["username"])
        return JsonResponse({"pk": user.pk}, status=201)

    def add_friend(request, pk, other):
        user = get_object_or_404(m.User, pk=pk)
        friend = get_object_or_404(m.User, pk=other)
        user.friends.add(friend)
        return HttpResponse(status=200)

    def remove_friend(request, pk, other):
        user = get_object_or_404(m.User, pk=pk)
        friend = get_object_or_404(m.User, pk=other)
        user.friends.remove(friend)
        return HttpResponse(status=200)

    def block_user(request, pk, other):
        user = get_object_or_404(m.User, pk=pk)
        target = get_object_or_404(m.User, pk=other)
        user.blocked.add(target)
        return HttpResponse(status=200)

    def unblock_user(request, pk, other):
        user = get_object_or_404(m.User, pk=pk)
        target = get_object_or_404(m.User, pk=other)
        user.blocked.remove(target)
        return HttpResponse(status=200)

    patterns += [
        path("users/register", register_user, name="RegisterUser"),
        path("users/<int:pk>/friend/<int:other>", add_friend, name="AddFriend"),
        path("users/<int:pk>/unfriend/<int:other>", remove_friend,
             name="RemoveFriend"),
        path("users/<int:pk>/block/<int:other>", block_user, name="BlockUser"),
        path("users/<int:pk>/unblock/<int:other>", unblock_user,
             name="UnblockUser"),
    ]

    # ------------------------------------------------------------------
    # Photos
    # ------------------------------------------------------------------

    def upload_photo(request, owner_id):
        owner = get_object_or_404(m.User, pk=owner_id)
        kwargs = {"image_hash": request.POST["image_hash"], "owner": owner}
        if "caption" in request.POST:
            kwargs["caption"] = request.POST["caption"]
        if "video" in request.POST:
            kwargs["video"] = True
        photo = m.Photo.objects.create(**kwargs)
        return JsonResponse({"pk": photo.pk}, status=201)

    def favorite_photo(request, owner_id, pk):
        user = get_object_or_404(m.User, pk=owner_id)
        photo = get_object_or_404(m.Photo, pk=pk)
        user.favorites.add(photo)
        return HttpResponse(status=200)

    def unfavorite_photo(request, owner_id, pk):
        user = get_object_or_404(m.User, pk=owner_id)
        photo = get_object_or_404(m.Photo, pk=pk)
        user.favorites.remove(photo)
        return HttpResponse(status=200)

    def like_photo(request, owner_id, pk):
        user = get_object_or_404(m.User, pk=owner_id)
        photo = get_object_or_404(m.Photo, pk=pk)
        photo.liked_by.add(user)
        return HttpResponse(status=200)

    def unlike_photo(request, owner_id, pk):
        user = get_object_or_404(m.User, pk=owner_id)
        photo = get_object_or_404(m.Photo, pk=pk)
        photo.liked_by.remove(user)
        return HttpResponse(status=200)

    def hide_photo(request, pk):
        m.Photo.objects.filter(pk=pk).update(hidden=True)
        return HttpResponse(status=200)

    def unhide_photo(request, pk):
        m.Photo.objects.filter(pk=pk).update(hidden=False)
        return HttpResponse(status=200)

    def rate_photo(request, pk):
        photo = get_object_or_404(m.Photo, pk=pk)
        photo.rating = request.post_int("rating")
        photo.save()
        return HttpResponse(status=200)

    def share_photo(request, pk, user_id):
        photo = get_object_or_404(m.Photo, pk=pk)
        user = get_object_or_404(m.User, pk=user_id)
        photo.shared_to.add(user)
        return HttpResponse(status=200)

    def unshare_photo(request, pk, user_id):
        photo = get_object_or_404(m.Photo, pk=pk)
        user = get_object_or_404(m.User, pk=user_id)
        photo.shared_to.remove(user)
        return HttpResponse(status=200)

    def mark_similar(request, pk, other):
        photo = get_object_or_404(m.Photo, pk=pk)
        twin = get_object_or_404(m.Photo, pk=other)
        photo.similar.add(twin)
        return HttpResponse(status=200)

    # A "third-party" ML captioning model, annotated so the analyzer treats
    # its result as an opaque input instead of degrading the whole path to
    # the conservative strategy (paper §6.3).
    caption_model = external(
        "caption_model",
        lambda image_hash: f"a photo ({image_hash})",
        STRING,
    )

    def auto_caption(request, pk):
        """Caption a photo with the annotated captioning model."""
        photo = get_object_or_404(m.Photo, pk=pk)
        photo.caption = caption_model(photo.image_hash)
        photo.save()
        return HttpResponse(status=200)

    def edit_photo_exif(request, pk):
        photo = get_object_or_404(m.Photo, pk=pk)
        if "caption" in request.POST:
            photo.caption = request.POST["caption"]
        if "rating" in request.POST:
            photo.rating = request.post_int("rating")
        if "hidden" in request.POST:
            photo.hidden = True
        photo.save()
        return HttpResponse(status=200)

    patterns += [
        path("users/<int:owner_id>/photos/upload", upload_photo,
             name="UploadPhoto"),
        path("users/<int:owner_id>/favorites/add/<int:pk>", favorite_photo,
             name="FavoritePhoto"),
        path("users/<int:owner_id>/favorites/remove/<int:pk>", unfavorite_photo,
             name="UnfavoritePhoto"),
        path("users/<int:owner_id>/likes/add/<int:pk>", like_photo,
             name="LikePhoto"),
        path("users/<int:owner_id>/likes/remove/<int:pk>", unlike_photo,
             name="UnlikePhoto"),
        path("photos/<int:pk>/hide", hide_photo, name="HidePhoto"),
        path("photos/<int:pk>/unhide", unhide_photo, name="UnhidePhoto"),
        path("photos/<int:pk>/rate", rate_photo, name="RatePhoto"),
        path("photos/<int:pk>/share/<int:user_id>", share_photo,
             name="SharePhoto"),
        path("photos/<int:pk>/unshare/<int:user_id>", unshare_photo,
             name="UnsharePhoto"),
        path("photos/<int:pk>/similar/<int:other>", mark_similar,
             name="MarkSimilar"),
        path("photos/<int:pk>/exif", edit_photo_exif, name="EditPhotoExif"),
        path("photos/<int:pk>/caption", auto_caption, name="AutoCaption"),
    ]

    # ------------------------------------------------------------------
    # Faces & people
    # ------------------------------------------------------------------

    def create_person(request, owner_id):
        creator = get_object_or_404(m.User, pk=owner_id)
        person = m.Person.objects.create(
            name=request.POST["name"], created_by=creator
        )
        return JsonResponse({"pk": person.pk}, status=201)

    def detect_face(request, photo_id):
        photo = get_object_or_404(m.Photo, pk=photo_id)
        face = m.Face.objects.create(
            photo=photo, confidence=request.post_int("confidence")
        )
        return JsonResponse({"pk": face.pk}, status=201)

    def tag_face(request, face_id, person_id, user_id):
        face = get_object_or_404(m.Face, pk=face_id)
        person = get_object_or_404(m.Person, pk=person_id)
        tagger = get_object_or_404(m.User, pk=user_id)
        face.person = person
        face.tagged_by = tagger
        face.save()
        return HttpResponse(status=200)

    def untag_face(request, face_id):
        face = get_object_or_404(m.Face, pk=face_id)
        face.person = None
        face.save()
        return HttpResponse(status=200)

    def verify_face(request, face_id, user_id):
        face = get_object_or_404(m.Face, pk=face_id)
        verifier = get_object_or_404(m.User, pk=user_id)
        face.verified_by = verifier
        face.save()
        return HttpResponse(status=200)

    def delete_face(request, face_id):
        m.Face.objects.filter(pk=face_id).delete()
        return HttpResponse(status=204)

    def set_key_face(request, person_id, face_id):
        person = get_object_or_404(m.Person, pk=person_id)
        face = get_object_or_404(m.Face, pk=face_id)
        person.key_face = face
        person.save()
        return HttpResponse(status=200)

    def set_person_cover(request, person_id, photo_id):
        person = get_object_or_404(m.Person, pk=person_id)
        photo = get_object_or_404(m.Photo, pk=photo_id)
        person.cover_photo = photo
        person.save()
        return HttpResponse(status=200)

    def merge_people(request, person_id, other_id):
        """Move every face of ``other`` onto ``person`` and drop ``other``."""
        person = get_object_or_404(m.Person, pk=person_id)
        other = get_object_or_404(m.Person, pk=other_id)
        m.Face.objects.filter(person=other).update(person=person)
        other.delete()
        return HttpResponse(status=200)

    def rename_person(request, person_id):
        person = get_object_or_404(m.Person, pk=person_id)
        person.name = request.POST["name"]
        person.save()
        return HttpResponse(status=200)

    patterns += [
        path("users/<int:owner_id>/people/create", create_person,
             name="CreatePerson"),
        path("photos/<int:photo_id>/faces/detect", detect_face,
             name="DetectFace"),
        path("faces/<int:face_id>/tag/<int:person_id>/<int:user_id>", tag_face,
             name="TagFace"),
        path("faces/<int:face_id>/untag", untag_face, name="UntagFace"),
        path("faces/<int:face_id>/verify/<int:user_id>", verify_face,
             name="VerifyFace"),
        path("faces/<int:face_id>/delete", delete_face, name="DeleteFace"),
        path("people/<int:person_id>/keyface/<int:face_id>", set_key_face,
             name="SetKeyFace"),
        path("people/<int:person_id>/cover/<int:photo_id>", set_person_cover,
             name="SetPersonCover"),
        path("people/<int:person_id>/merge/<int:other_id>", merge_people,
             name="MergePeople"),
        path("people/<int:person_id>/rename", rename_person,
             name="RenamePerson"),
    ]

    # ------------------------------------------------------------------
    # Tags & comments
    # ------------------------------------------------------------------

    def create_tag(request, owner_id):
        creator = get_object_or_404(m.User, pk=owner_id)
        tag = m.Tag.objects.create(name=request.POST["name"], created_by=creator)
        return JsonResponse({"pk": tag.pk}, status=201)

    def tag_photo(request, tag_id, photo_id):
        tag = get_object_or_404(m.Tag, pk=tag_id)
        photo = get_object_or_404(m.Photo, pk=photo_id)
        tag.photos.add(photo)
        return HttpResponse(status=200)

    def untag_photo(request, tag_id, photo_id):
        tag = get_object_or_404(m.Tag, pk=tag_id)
        photo = get_object_or_404(m.Photo, pk=photo_id)
        tag.photos.remove(photo)
        return HttpResponse(status=200)

    def add_comment(request, photo_id, user_id):
        photo = get_object_or_404(m.Photo, pk=photo_id)
        author = get_object_or_404(m.User, pk=user_id)
        comment = m.Comment.objects.create(
            photo=photo, author=author, text=request.POST["text"]
        )
        if "mention" in request.POST:
            mentioned = get_object_or_404(
                m.User, username=request.POST["mention"]
            )
            comment.mentions.add(mentioned)
        return JsonResponse({"pk": comment.pk}, status=201)

    patterns += [
        path("users/<int:owner_id>/tags/create", create_tag, name="CreateTag"),
        path("tags/<int:tag_id>/photos/add/<int:photo_id>", tag_photo,
             name="TagPhoto"),
        path("tags/<int:tag_id>/photos/remove/<int:photo_id>", untag_photo,
             name="UntagPhoto"),
        path("photos/<int:photo_id>/comments/add/<int:user_id>", add_comment,
             name="AddComment"),
    ]

    # ------------------------------------------------------------------
    # Albums — loop-generated management views per album kind
    # ------------------------------------------------------------------

    album_kinds = {
        "auto": m.AlbumAuto,
        "date": m.AlbumDate,
        "user": m.AlbumUser,
        "place": m.AlbumPlace,
        "thing": m.AlbumThing,
    }

    def _album_views(kind: str, album_cls: type) -> list:
        def create_album(request, owner_id, _cls=album_cls):
            owner = get_object_or_404(m.User, pk=owner_id)
            kwargs = {"owner": owner}
            if _cls is m.AlbumDate:
                kwargs["date"] = request.post_int("date")
            else:
                kwargs["title"] = request.POST["title"]
            album = _cls.objects.create(**kwargs)
            return JsonResponse({"pk": album.pk}, status=201)

        def add_photo(request, pk, photo_id, _cls=album_cls):
            album = get_object_or_404(_cls, pk=pk)
            photo = get_object_or_404(m.Photo, pk=photo_id)
            album.photos.add(photo)
            return HttpResponse(status=200)

        def remove_photo(request, pk, photo_id, _cls=album_cls):
            album = get_object_or_404(_cls, pk=pk)
            photo = get_object_or_404(m.Photo, pk=photo_id)
            album.photos.remove(photo)
            return HttpResponse(status=200)

        def share_album(request, pk, user_id, _cls=album_cls):
            album = get_object_or_404(_cls, pk=pk)
            user = get_object_or_404(m.User, pk=user_id)
            album.shared_to.add(user)
            return HttpResponse(status=200)

        views = [
            path(f"albums/{kind}/create/<int:owner_id>", create_album,
                 name=f"CreateAlbum_{kind}"),
            path(f"albums/{kind}/<int:pk>/photos/add/<int:photo_id>", add_photo,
                 name=f"AlbumAddPhoto_{kind}"),
            path(f"albums/{kind}/<int:pk>/photos/remove/<int:photo_id>",
                 remove_photo, name=f"AlbumRemovePhoto_{kind}"),
            path(f"albums/{kind}/<int:pk>/share/<int:user_id>", share_album,
                 name=f"ShareAlbum_{kind}"),
        ]
        if hasattr(album_cls, "cover"):
            def set_cover(request, pk, photo_id, _cls=album_cls):
                album = get_object_or_404(_cls, pk=pk)
                photo = get_object_or_404(m.Photo, pk=photo_id)
                album.cover = photo
                album.save()
                return HttpResponse(status=200)

            views.append(
                path(f"albums/{kind}/<int:pk>/cover/<int:photo_id>", set_cover,
                     name=f"SetAlbumCover_{kind}")
            )
        return views

    for kind, album_cls in album_kinds.items():
        patterns += _album_views(kind, album_cls)

    def add_collaborator(request, pk, user_id):
        album = get_object_or_404(m.AlbumUser, pk=pk)
        user = get_object_or_404(m.User, pk=user_id)
        album.collaborators.add(user)
        return HttpResponse(status=200)

    def remove_collaborator(request, pk, user_id):
        album = get_object_or_404(m.AlbumUser, pk=pk)
        user = get_object_or_404(m.User, pk=user_id)
        album.collaborators.remove(user)
        return HttpResponse(status=200)

    def add_person_to_auto(request, pk, person_id):
        album = get_object_or_404(m.AlbumAuto, pk=pk)
        person = get_object_or_404(m.Person, pk=person_id)
        album.people.add(person)
        return HttpResponse(status=200)

    def tag_album_thing(request, pk, tag_id):
        album = get_object_or_404(m.AlbumThing, pk=pk)
        tag = get_object_or_404(m.Tag, pk=tag_id)
        album.tags.add(tag)
        return HttpResponse(status=200)

    patterns += [
        path("albums/user/<int:pk>/collaborators/add/<int:user_id>",
             add_collaborator, name="AddCollaborator"),
        path("albums/user/<int:pk>/collaborators/remove/<int:user_id>",
             remove_collaborator, name="RemoveCollaborator"),
        path("albums/auto/<int:pk>/people/add/<int:person_id>",
             add_person_to_auto, name="AlbumAddPerson"),
        path("albums/thing/<int:pk>/tags/add/<int:tag_id>", tag_album_thing,
             name="AlbumThingTag"),
    ]

    # ------------------------------------------------------------------
    # Long-running jobs
    # ------------------------------------------------------------------

    def start_job(request, owner_id):
        owner = get_object_or_404(m.User, pk=owner_id)
        job = m.LongRunningJob.objects.create(
            started_by=owner, job_type=request.POST["job_type"]
        )
        return JsonResponse({"pk": job.pk}, status=201)

    def finish_job(request, pk):
        job = get_object_or_404(m.LongRunningJob, pk=pk)
        job.finished = True
        job.progress = 100
        job.save()
        return HttpResponse(status=200)

    def fail_job(request, pk):
        job = get_object_or_404(m.LongRunningJob, pk=pk)
        job.finished = True
        job.failed = True
        job.save()
        return HttpResponse(status=200)

    def cancel_job(request, pk):
        m.LongRunningJob.objects.filter(pk=pk).delete()
        return HttpResponse(status=204)

    def attach_photo_to_job(request, pk, photo_id):
        job = get_object_or_404(m.LongRunningJob, pk=pk)
        photo = get_object_or_404(m.Photo, pk=photo_id)
        job.photos.add(photo)
        return HttpResponse(status=200)

    patterns += [
        path("jobs/start/<int:owner_id>", start_job, name="StartJob"),
        path("jobs/<int:pk>/finish", finish_job, name="FinishJob"),
        path("jobs/<int:pk>/fail", fail_job, name="FailJob"),
        path("jobs/<int:pk>/cancel", cancel_job, name="CancelJob"),
        path("jobs/<int:pk>/photos/add/<int:photo_id>", attach_photo_to_job,
             name="JobAddPhoto"),
    ]

    # ------------------------------------------------------------------
    # Read-only search & stats (branch-heavy, no effects)
    # ------------------------------------------------------------------

    def search_photos(request):
        qs = m.Photo.objects.all()
        if "hidden" in request.POST:
            qs = qs.filter(hidden=False)
        if "video" in request.POST:
            qs = qs.filter(video=True)
        if "min_rating" in request.POST:
            qs = qs.filter(rating__gte=request.post_int("min_rating"))
        if "owner" in request.POST:
            qs = qs.filter(owner__username=request.POST["owner"])
        return JsonResponse(qs.count())

    def recent_photo(request):
        photo = m.Photo.objects.order_by("added").last()
        if photo:
            return JsonResponse({"pk": photo.pk})
        return JsonResponse(None, status=404)

    def user_stats(request, pk):
        user = get_object_or_404(m.User, pk=pk)
        return JsonResponse(
            {
                "photos": m.Photo.objects.filter(owner=user).count(),
                "favorites": user.favorites.count(),
            }
        )

    def face_backlog(request):
        return JsonResponse(m.Face.objects.filter(person__isnull=True).count())

    patterns += [
        path("photos/search", search_photos, name="SearchPhotos"),
        path("photos/recent", recent_photo, name="RecentPhoto"),
        path("users/<int:pk>/stats", user_stats, name="UserStats"),
        path("faces/backlog", face_backlog, name="FaceBacklog"),
    ]
    return patterns
