"""Zhihu HTTP endpoints."""

from __future__ import annotations

from types import SimpleNamespace

from ...web import HttpResponse, JsonResponse, get_object_or_404, path


def build_views(m: SimpleNamespace) -> list:
    # -- read-only --------------------------------------------------------

    def question_detail(request, pk):
        question = get_object_or_404(m.Question, pk=pk)
        return JsonResponse({"title": question.title, "follow": question.follow})

    def question_answers(request, pk):
        question = get_object_or_404(m.Question, pk=pk)
        return JsonResponse(m.Answer.objects.filter(question=question).count())

    def hot_answer(request, pk):
        """The highest-voted answer (an order-related read)."""
        question = get_object_or_404(m.Question, pk=pk)
        answer = (
            m.Answer.objects.filter(question=question).order_by("-votes").first()
        )
        if answer:
            return JsonResponse({"pk": answer.pk})
        return JsonResponse(None, status=404)

    def latest_question(request):
        """The most recent question (an order-related read)."""
        question = m.Question.objects.order_by("created").last()
        if question:
            return JsonResponse({"pk": question.pk})
        return JsonResponse(None, status=404)

    def profile_detail(request, handle):
        profile = get_object_or_404(m.Profile, handle=handle)
        return JsonResponse({"bio": profile.bio, "reputation": profile.reputation})

    def unread_notifications(request, handle):
        profile = get_object_or_404(m.Profile, handle=handle)
        return JsonResponse(
            m.Notification.objects.filter(recipient=profile, read=False).count()
        )

    def topic_questions(request, pk):
        topic = get_object_or_404(m.Topic, pk=pk)
        return JsonResponse(topic.questions.count())

    # -- §6.4 case-study operations -----------------------------------------

    def create_question(request, handle):
        """CreateQuestion: a new Question with follow count zero."""
        author = get_object_or_404(m.Profile, handle=handle)
        question = m.Question.objects.create(
            title=request.POST["title"],
            body=request.POST["body"],
            author=author,
        )
        return JsonResponse({"pk": question.pk}, status=201)

    def follow_question(request, handle, pk):
        """FollowQuestion: subscribe + bump the question's follow count."""
        user = get_object_or_404(m.Profile, handle=handle)
        question = get_object_or_404(m.Question, pk=pk)
        m.QuestionFollow.objects.create(
            user=user,
            question=question,
            user_key=handle,
            question_key=request.POST["question_key"],
        )
        question.follow = question.follow + 1
        question.save()
        return HttpResponse(status=201)

    # -- content creation -----------------------------------------------------

    def register_profile(request):
        profile = m.Profile.objects.create(handle=request.POST["handle"])
        return JsonResponse({"pk": profile.pk}, status=201)

    def create_answer(request, handle, pk):
        author = get_object_or_404(m.Profile, handle=handle)
        question = get_object_or_404(m.Question, pk=pk)
        answer = m.Answer.objects.create(
            question=question, author=author, body=request.POST["body"]
        )
        return JsonResponse({"pk": answer.pk}, status=201)

    def comment_question(request, handle, pk):
        author = get_object_or_404(m.Profile, handle=handle)
        question = get_object_or_404(m.Question, pk=pk)
        m.QuestionComment.objects.create(
            question=question, author=author, text=request.POST["text"]
        )
        return HttpResponse(status=201)

    def comment_answer(request, handle, pk):
        author = get_object_or_404(m.Profile, handle=handle)
        answer = get_object_or_404(m.Answer, pk=pk)
        m.AnswerComment.objects.create(
            answer=answer, author=author, text=request.POST["text"]
        )
        return HttpResponse(status=201)

    def upvote_answer(request, handle, pk):
        voter = get_object_or_404(m.Profile, handle=handle)
        answer = get_object_or_404(m.Answer, pk=pk)
        answer.upvoters.add(voter)
        answer.votes = answer.votes + 1
        answer.save()
        return HttpResponse(status=200)

    def retract_vote(request, handle, pk):
        voter = get_object_or_404(m.Profile, handle=handle)
        answer = get_object_or_404(m.Answer, pk=pk)
        answer.upvoters.remove(voter)
        answer.votes = answer.votes - 1
        answer.save()
        return HttpResponse(status=200)

    def delete_answer(request, pk):
        m.Answer.objects.filter(pk=pk).delete()
        return HttpResponse(status=204)

    # -- social graph -----------------------------------------------------------

    def follow_user(request, handle, other):
        follower = get_object_or_404(m.Profile, handle=handle)
        followee = get_object_or_404(m.Profile, handle=other)
        follower.following.add(followee)
        return HttpResponse(status=200)

    def follow_topic(request, handle, pk):
        profile = get_object_or_404(m.Profile, handle=handle)
        topic = get_object_or_404(m.Topic, pk=pk)
        topic.followers.add(profile)
        return HttpResponse(status=200)

    def create_topic(request):
        topic = m.Topic.objects.create(name=request.POST["name"])
        return JsonResponse({"pk": topic.pk}, status=201)

    def tag_question(request, pk, topic_id):
        question = get_object_or_404(m.Question, pk=pk)
        topic = get_object_or_404(m.Topic, pk=topic_id)
        question.topics.add(topic)
        return HttpResponse(status=200)

    # -- collections, drafts, reports, badges, messages ------------------------

    def create_collection(request, handle):
        owner = get_object_or_404(m.Profile, handle=handle)
        collection = m.Collection.objects.create(
            owner=owner, name=request.POST["name"]
        )
        return JsonResponse({"pk": collection.pk}, status=201)

    def collect_answer(request, pk, answer_id):
        collection = get_object_or_404(m.Collection, pk=pk)
        answer = get_object_or_404(m.Answer, pk=answer_id)
        collection.answers.add(answer)
        return HttpResponse(status=200)

    def save_draft(request, handle):
        author = get_object_or_404(m.Profile, handle=handle)
        draft = m.Draft.objects.create(
            author=author,
            title=request.POST["title"],
            body=request.POST["body"],
        )
        return JsonResponse({"pk": draft.pk}, status=201)

    def submit_report(request, handle, answer_id):
        reporter = get_object_or_404(m.Profile, handle=handle)
        answer = get_object_or_404(m.Answer, pk=answer_id)
        m.Report.objects.create(
            reporter=reporter, answer=answer, reason=request.POST["reason"]
        )
        return HttpResponse(status=201)

    def award_badge(request, handle, badge_id):
        profile = get_object_or_404(m.Profile, handle=handle)
        badge = get_object_or_404(m.Badge, pk=badge_id)
        m.BadgeAward.objects.create(badge=badge, profile=profile)
        return HttpResponse(status=201)

    def send_message(request, handle, other):
        sender = get_object_or_404(m.Profile, handle=handle)
        recipient = get_object_or_404(m.Profile, handle=other)
        m.Message.objects.create(
            sender=sender, recipient=recipient, text=request.POST["text"]
        )
        return HttpResponse(status=201)

    def read_notifications(request, handle):
        profile = get_object_or_404(m.Profile, handle=handle)
        m.Notification.objects.filter(recipient=profile).update(read=True)
        return HttpResponse(status=200)

    return [
        path("q/<int:pk>", question_detail, name="QuestionDetail"),
        path("q/<int:pk>/answers", question_answers, name="QuestionAnswers"),
        path("q/<int:pk>/hot", hot_answer, name="HotAnswer"),
        path("q/latest", latest_question, name="LatestQuestion"),
        path("u/<handle>", profile_detail, name="ProfileDetail"),
        path("u/<handle>/unread", unread_notifications, name="UnreadNotifications"),
        path("t/<int:pk>/questions", topic_questions, name="TopicQuestions"),
        path("u/<handle>/ask", create_question, name="CreateQuestion"),
        path("u/<handle>/follow-q/<int:pk>", follow_question, name="FollowQuestion"),
        path("register", register_profile, name="RegisterProfile"),
        path("u/<handle>/answer/<int:pk>", create_answer, name="CreateAnswer"),
        path("u/<handle>/comment-q/<int:pk>", comment_question,
             name="CommentQuestion"),
        path("u/<handle>/comment-a/<int:pk>", comment_answer, name="CommentAnswer"),
        path("u/<handle>/upvote/<int:pk>", upvote_answer, name="UpvoteAnswer"),
        path("u/<handle>/retract/<int:pk>", retract_vote, name="RetractVote"),
        path("a/<int:pk>/delete", delete_answer, name="DeleteAnswer"),
        path("u/<handle>/follow-u/<other>", follow_user, name="FollowUser"),
        path("u/<handle>/follow-t/<int:pk>", follow_topic, name="FollowTopic"),
        path("topics/create", create_topic, name="CreateTopic"),
        path("q/<int:pk>/tag/<int:topic_id>", tag_question, name="TagQuestion"),
        path("u/<handle>/collections/create", create_collection,
             name="CreateCollection"),
        path("c/<int:pk>/collect/<int:answer_id>", collect_answer,
             name="CollectAnswer"),
        path("u/<handle>/drafts/save", save_draft, name="SaveDraft"),
        path("u/<handle>/report/<int:answer_id>", submit_report,
             name="SubmitReport"),
        path("u/<handle>/badges/<int:badge_id>", award_badge, name="AwardBadge"),
        path("u/<handle>/message/<other>", send_message, name="SendMessage"),
        path("u/<handle>/notifications/read", read_notifications,
             name="ReadNotifications"),
    ]
