"""Zhihu data model: 14 models, 25 relations."""

from __future__ import annotations

from types import SimpleNamespace

from ...orm import (
    BooleanField,
    CASCADE,
    DateTimeField,
    ForeignKey,
    ManyToManyField,
    Model,
    PositiveIntegerField,
    Registry,
    SET_NULL,
    TextField,
)


def build_models(registry: Registry) -> SimpleNamespace:
    with registry.use():

        class Profile(Model):
            handle = TextField(unique=True)
            bio = TextField(default="")
            reputation = PositiveIntegerField(default=0)
            following = ManyToManyField("Profile", related_name="followed_by")

        class Topic(Model):
            name = TextField(unique=True)
            description = TextField(default="")
            followers = ManyToManyField(Profile, related_name="followed_topics")

        class Question(Model):
            title = TextField(default="")
            body = TextField(default="")
            author = ForeignKey(Profile, on_delete=CASCADE)
            topics = ManyToManyField(Topic, related_name="questions")
            follow = PositiveIntegerField(default=0)
            created = DateTimeField(auto_now_add=True)

        class QuestionFollow(Model):
            """A user's subscription to a question's activity (§6.4).

            The (user, question) pair is unique-together; the key columns
            mirror the foreign keys, the common Django idiom for enforcing
            joint uniqueness over relations."""

            user = ForeignKey(Profile, on_delete=CASCADE)
            question = ForeignKey(Question, on_delete=CASCADE)
            user_key = TextField(default="")
            question_key = TextField(default="")

            class Meta:
                unique_together = ("user_key", "question_key")

        class Answer(Model):
            question = ForeignKey(Question, on_delete=CASCADE)
            author = ForeignKey(Profile, on_delete=CASCADE)
            body = TextField(default="")
            votes = PositiveIntegerField(default=0)
            upvoters = ManyToManyField(Profile, related_name="upvoted")
            downvoters = ManyToManyField(Profile, related_name="downvoted")
            created = DateTimeField(auto_now_add=True)

        class QuestionComment(Model):
            question = ForeignKey(Question, on_delete=CASCADE)
            author = ForeignKey(Profile, on_delete=CASCADE)
            text = TextField(default="")

        class AnswerComment(Model):
            answer = ForeignKey(Answer, on_delete=CASCADE)
            author = ForeignKey(Profile, on_delete=CASCADE)
            text = TextField(default="")

        class Notification(Model):
            recipient = ForeignKey(Profile, on_delete=CASCADE)
            text = TextField(default="")
            read = BooleanField(default=False)

        class Collection(Model):
            owner = ForeignKey(Profile, on_delete=CASCADE)
            name = TextField(default="")
            answers = ManyToManyField(Answer, related_name="collected_in")

        class Draft(Model):
            author = ForeignKey(Profile, on_delete=CASCADE)
            title = TextField(default="")
            body = TextField(default="")

        class Report(Model):
            reporter = ForeignKey(Profile, on_delete=CASCADE)
            answer = ForeignKey(Answer, on_delete=SET_NULL, null=True)
            question = ForeignKey(Question, on_delete=SET_NULL, null=True)
            reason = TextField(default="")
            resolved = BooleanField(default=False)

        class Badge(Model):
            name = TextField(unique=True)
            description = TextField(default="")

        class BadgeAward(Model):
            badge = ForeignKey(Badge, on_delete=CASCADE)
            profile = ForeignKey(Profile, on_delete=CASCADE)
            awarded = DateTimeField(auto_now_add=True)

        class Message(Model):
            sender = ForeignKey(Profile, on_delete=CASCADE)
            recipient = ForeignKey(Profile, on_delete=CASCADE)
            text = TextField(default="")
            sent = DateTimeField(auto_now_add=True)

    return SimpleNamespace(
        Profile=Profile,
        Topic=Topic,
        Question=Question,
        QuestionFollow=QuestionFollow,
        Answer=Answer,
        QuestionComment=QuestionComment,
        AnswerComment=AnswerComment,
        Notification=Notification,
        Collection=Collection,
        Draft=Draft,
        Report=Report,
        Badge=Badge,
        BadgeAward=BadgeAward,
        Message=Message,
    )
