"""Zhihu — a miniature of the zhihu Q&A application (paper §6.1, §6.4).

A Quora-like site: profiles, topics, questions, answers, comments, votes,
collections, drafts, reports, badges, messages and notifications.  Table 4
of the paper reports 14 models, 25 relations, 51 code paths of which 17
effectful.

The §6.4 case-study operations live here: ``CreateQuestion`` initializes a
question's follow counter to zero, while ``FollowQuestion`` creates a
``QuestionFollow`` object whose (user, question) pair is unique-together
and increments the counter — yielding the commutativity conflict
(CreateQuestion, FollowQuestion) and the semantic self-conflict
(FollowQuestion, FollowQuestion) described in the paper.
"""

from .app import build_app

__all__ = ["build_app"]
