"""Todo models and views (built per call, on a fresh registry)."""

from __future__ import annotations

import os

from ...orm import (
    BooleanField,
    DateTimeField,
    IntegerField,
    Model,
    Registry,
    TextField,
)
from ...web import Application, HttpResponse, JsonResponse, path


def build_app() -> Application:
    """Construct a fresh Todo application instance."""
    registry = Registry("todo")
    with registry.use():

        class Task(Model):
            title = TextField(default="")
            note = TextField(default="")
            done = BooleanField(default=False)
            starred = BooleanField(default=False)
            priority = IntegerField(default=0)
            created = DateTimeField(auto_now_add=True)

    # -- read-only views ------------------------------------------------

    def task_list(request):
        return JsonResponse(Task.objects.count())

    def pending_count(request):
        return JsonResponse(Task.objects.filter(done=False).count())

    def starred_count(request):
        return JsonResponse(Task.objects.filter(starred=True).count())

    def task_detail(request, pk):
        task = Task.objects.get(pk=pk)
        return JsonResponse({"title": task.title, "done": task.done})

    # -- effectful views -------------------------------------------------

    def add_task(request):
        task = Task.objects.create(title=request.POST["title"])
        return JsonResponse({"pk": task.pk}, status=201)

    def complete_task(request, pk):
        task = Task.objects.get(pk=pk)
        task.done = True
        task.save()
        return HttpResponse(status=200)

    def reopen_task(request, pk):
        task = Task.objects.get(pk=pk)
        task.done = False
        task.save()
        return HttpResponse(status=200)

    def toggle_star(request, pk):
        task = Task.objects.get(pk=pk)
        if task.starred:
            task.starred = False
        else:
            task.starred = True
        task.save()
        return HttpResponse(status=200)

    def edit_task(request, pk):
        task = Task.objects.get(pk=pk)
        if "title" in request.POST:
            task.title = request.POST["title"]
        if "note" in request.POST:
            task.note = request.POST["note"]
        task.save()
        return HttpResponse(status=200)

    def delete_task(request, pk):
        task = Task.objects.get(pk=pk)
        task.delete()
        return HttpResponse(status=204)

    def clear_completed(request):
        Task.objects.filter(done=True).delete()
        return HttpResponse(status=204)

    patterns = [
        path("tasks", task_list, name="TaskList"),
        path("tasks/pending", pending_count, name="PendingCount"),
        path("tasks/starred", starred_count, name="StarredCount"),
        path("tasks/<int:pk>", task_detail, name="TaskDetail"),
        path("tasks/add", add_task, name="AddTask"),
        path("tasks/<int:pk>/complete", complete_task, name="CompleteTask"),
        path("tasks/<int:pk>/reopen", reopen_task, name="ReopenTask"),
        path("tasks/<int:pk>/star", toggle_star, name="ToggleStar"),
        path("tasks/<int:pk>/edit", edit_task, name="EditTask"),
        path("tasks/<int:pk>/delete", delete_task, name="DeleteTask"),
        path("tasks/clear", clear_completed, name="ClearCompleted"),
    ]
    return Application("todo", registry, patterns, source_loc=_loc())


def _loc() -> int:
    """Lines of application code (reported in Table 4)."""
    here = os.path.dirname(__file__)
    total = 0
    for fname in os.listdir(here):
        if fname.endswith(".py"):
            with open(os.path.join(here, fname)) as f:
                total += sum(1 for _ in f)
    return total
