"""Todo — a faithful miniature of the django-todo application (paper §6.1).

A single ``Task`` model, no relations; list/detail pages plus task
creation, completion, starring, editing and bulk clearing.  Table 4 of the
paper reports 1 model, 0 relations, 18 code paths of which 10 effectful.
"""

from .app import build_app

__all__ = ["build_app"]
