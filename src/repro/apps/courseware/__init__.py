"""Courseware (paper §6.2, as specified by Hamsaz), as a web application.

Three models — ``Student``, ``Course`` and ``Enrolment`` (a pair of a
student and a course) — and four effectful operations: ``Register``,
``AddCourse``, ``Enroll`` and ``DeleteCourse``.  The only application
property is referential integrity, carried by the foreign keys of
``Enrolment``.

Expected verification results (paper Table 5): **1 commutativity failure**
— (AddCourse, DeleteCourse), because the two can carry the same ID — and
**1 semantic failure** — (Enroll, DeleteCourse), because the course can be
deleted before the enrolment lands, breaking referential integrity.
"""

from .app import build_app

__all__ = ["build_app"]
