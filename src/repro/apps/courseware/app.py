"""Courseware models and views (built per call, on a fresh registry)."""

from __future__ import annotations

from ...orm import PROTECT, ForeignKey, Model, Registry, TextField
from ...web import Application, HttpResponse, JsonResponse, path


def build_app() -> Application:
    """Construct a fresh Courseware application instance."""
    registry = Registry("courseware")
    with registry.use():

        class Student(Model):
            name = TextField(default="")

        class Course(Model):
            title = TextField(default="")

        class Enrolment(Model):
            """A (student, course) pair.

            Referential integrity is a *precondition* (PROTECT), exactly
            as in the Hamsaz specification: a course with enrolments
            cannot be deleted."""

            student = ForeignKey(Student, on_delete=PROTECT)
            course = ForeignKey(Course, on_delete=PROTECT)

    def register(request):
        """Register a new student."""
        student = Student.objects.create(name=request.POST["name"])
        return JsonResponse({"pk": student.pk}, status=201)

    def add_course(request):
        """Open a new course."""
        course = Course.objects.create(title=request.POST["title"])
        return JsonResponse({"pk": course.pk}, status=201)

    def enroll(request, student_id, course_id):
        """Enroll a student in a course (both must exist)."""
        student = Student.objects.get(pk=student_id)
        course = Course.objects.get(pk=course_id)
        Enrolment.objects.create(student=student, course=course)
        return HttpResponse(status=201)

    def delete_course(request, course_id):
        """Drop a course.

        Written as a delete-by-query, which carries no *existence*
        precondition (deleting an already-absent course is a no-op); the
        PROTECT keys add the referential-integrity precondition that no
        enrolment references the course."""
        Course.objects.filter(pk=course_id).delete()
        return HttpResponse(status=204)

    def list_courses(request):
        """Read-only: number of open courses."""
        return JsonResponse(Course.objects.count())

    patterns = [
        path("register", register, name="Register"),
        path("courses/add", add_course, name="AddCourse"),
        path("enroll/<int:student_id>/<int:course_id>", enroll, name="Enroll"),
        path("courses/<int:course_id>/delete", delete_course, name="DeleteCourse"),
        path("courses", list_courses, name="ListCourses"),
    ]
    return Application("courseware", registry, patterns, source_loc=_loc())


def _loc() -> int:
    """Lines of application code (reported in Table 4)."""
    import os

    here = os.path.dirname(__file__)
    total = 0
    for fname in os.listdir(here):
        if fname.endswith(".py"):
            with open(os.path.join(here, fname)) as f:
                total += sum(1 for _ in f)
    return total
