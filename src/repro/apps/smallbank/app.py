"""SmallBank models and views (built per call, on a fresh registry)."""

from __future__ import annotations

from ...orm import Model, PositiveIntegerField, Registry, TextField
from ...web import Application, HttpResponse, JsonResponse, path


def build_app() -> Application:
    """Construct a fresh SmallBank application instance."""
    registry = Registry("smallbank")
    with registry.use():

        class Account(Model):
            """A customer account with two non-negative balances."""

            name = TextField(primary_key=True)
            checking = PositiveIntegerField(default=0)
            savings = PositiveIntegerField(default=0)

    def balance(request, name):
        """Read-only: the total balance of an account."""
        account = Account.objects.get(name=name)
        return JsonResponse(account.checking + account.savings)

    def deposit_checking(request, name):
        """Add a non-negative amount to the checking balance."""
        amount = request.post_int("amount")
        if amount < 0:
            raise ValueError("deposit must be non-negative")
        account = Account.objects.get(name=name)
        account.checking = account.checking + amount
        account.save()
        return HttpResponse(status=200)

    def transact_savings(request, name):
        """Add a (possibly negative) amount to the savings balance.

        The non-negativity of ``savings`` (PositiveIntegerField) is the
        implicit precondition: an overdraft aborts the transaction."""
        amount = request.post_int("amount")
        account = Account.objects.get(name=name)
        account.savings = account.savings + amount
        account.save()
        return HttpResponse(status=200)

    def send_payment(request, src, dst):
        """Move a non-negative amount between two checking balances."""
        amount = request.post_int("amount")
        if amount < 0:
            raise ValueError("payment must be non-negative")
        source = Account.objects.get(name=src)
        destination = Account.objects.get(name=dst)
        source.checking = source.checking - amount
        source.save()
        destination.checking = destination.checking + amount
        destination.save()
        return HttpResponse(status=200)

    def amalgamate(request, src, dst):
        """Consolidate ``amount`` of ``src``'s checking funds into ``dst``.

        The client audits the source balance and submits the amount to
        amalgamate; non-negativity of the source balance is enforced by the
        ``PositiveIntegerField`` refinement when the subtraction is saved."""
        amount = request.post_int("amount")
        if amount < 0:
            raise ValueError("amalgamate amount must be non-negative")
        source = Account.objects.get(name=src)
        destination = Account.objects.get(name=dst)
        source.checking = source.checking - amount
        source.save()
        destination.checking = destination.checking + amount
        destination.save()
        return HttpResponse(status=200)

    patterns = [
        path("balance/<name>", balance, name="Balance"),
        path("deposit/<name>", deposit_checking, name="DepositChecking"),
        path("transact/<name>", transact_savings, name="TransactSavings"),
        path("pay/<src>/<dst>", send_payment, name="SendPayment"),
        path("amalgamate/<src>/<dst>", amalgamate, name="Amalgamate"),
    ]
    return Application("smallbank", registry, patterns, source_loc=_loc())


def _loc() -> int:
    """Lines of application code (reported in Table 4)."""
    import os

    here = os.path.dirname(__file__)
    total = 0
    for fname in os.listdir(here):
        if fname.endswith(".py"):
            with open(os.path.join(here, fname)) as f:
                total += sum(1 for _ in f)
    return total
