"""SmallBank (paper §6.2), re-implemented as a web application.

One model, ``Account``, holding two balances (checking and savings), and
five operations: ``Balance`` (read-only), ``DepositChecking``,
``TransactSavings``, ``SendPayment`` and ``Amalgamate``.  The application
invariant is that balances never go negative — expressed, Django-style,
through ``PositiveIntegerField`` (paper §2.3), whose refinement the
analyzer turns into guards.

Expected verification results (paper Table 5): **0 commutativity failures,
4 semantic failures** — (TransactSavings, TransactSavings),
(SendPayment, SendPayment), (Amalgamate, Amalgamate) and
(Amalgamate, SendPayment), all arising from balance non-negativity.

Implementation note: ``Amalgamate`` consolidates a client-audited amount of
the source account's checking funds (the web-idiomatic variant of H-Store's
read-modify-write amalgamate; the moved amount travels in the request and
is validated against the invariant server-side).  See DESIGN.md §7.
"""

from .app import build_app

__all__ = ["build_app"]
