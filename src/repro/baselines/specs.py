"""Hand-written operation specifications for the baseline analyzers.

Prior tools (Rigi, Hamsaz, CISE) do not analyze application code: they
consume *explicit, static* operation specifications — preconditions and
effects over a simple table-structured state (paper §7).  This module
contains such specifications for the two synthetic benchmarks, written
independently of the SOIR machinery so that agreement between Noctua and
the baselines (paper Table 5) is a meaningful, two-implementation check.

A specification state is ``dict[table_name, dict[key, record]]``; effects
mutate it in place; preconditions are pure predicates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable

SpecState = dict  # table name -> {key: record-dict}


@dataclass(frozen=True)
class Param:
    """One operation parameter with its finite candidate domain."""

    name: str
    domain: tuple

    #: fresh parameters model storage-generated unique IDs
    fresh: bool = False


@dataclass(frozen=True)
class OpSpec:
    """One operation: a guarded state transformer."""

    name: str
    params: tuple[Param, ...]
    precondition: Callable[[SpecState, dict], bool]
    effect: Callable[[SpecState, dict], None]

    def arg_vectors(self) -> Iterable[dict]:
        pools = [p.domain for p in self.params]
        for combo in itertools.product(*pools):
            yield dict(zip((p.name for p in self.params), combo))


@dataclass
class BenchmarkSpec:
    """A benchmark: operations plus a generator of initial states."""

    name: str
    operations: list[OpSpec]
    states: Callable[[], list[SpecState]]
    invariant: Callable[[SpecState], bool] = field(default=lambda s: True)

    def operation(self, name: str) -> OpSpec:
        for op in self.operations:
            if op.name == name:
                return op
        raise KeyError(name)


def _clone(state: SpecState) -> SpecState:
    return {t: {k: dict(r) for k, r in rows.items()} for t, rows in state.items()}


# ---------------------------------------------------------------------------
# SmallBank
# ---------------------------------------------------------------------------


def smallbank_spec() -> BenchmarkSpec:
    """SmallBank as the Rigi family specifies it: accounts with checking
    and savings balances, invariant: balances never negative."""

    accounts = ("a", "b")
    amounts = (0, 1, 2)

    def deposit_pre(state, args):
        return args["v"] >= 0 and args["acct"] in state["accounts"]

    def deposit_eff(state, args):
        state["accounts"][args["acct"]]["checking"] += args["v"]

    def transact_pre(state, args):
        row = state["accounts"].get(args["acct"])
        return row is not None and row["savings"] + args["v"] >= 0

    def transact_eff(state, args):
        state["accounts"][args["acct"]]["savings"] += args["v"]

    def payment_pre(state, args):
        src = state["accounts"].get(args["src"])
        dst = state["accounts"].get(args["dst"])
        return (
            src is not None
            and dst is not None
            and args["v"] >= 0
            and src["checking"] - args["v"] >= 0
        )

    def payment_eff(state, args):
        state["accounts"][args["src"]]["checking"] -= args["v"]
        state["accounts"][args["dst"]]["checking"] += args["v"]

    def states() -> list[SpecState]:
        out = []
        for c_a, s_a, c_b, s_b in itertools.product((0, 1, 2), repeat=4):
            out.append(
                {
                    "accounts": {
                        "a": {"checking": c_a, "savings": s_a},
                        "b": {"checking": c_b, "savings": s_b},
                    }
                }
            )
        return out

    def invariant(state) -> bool:
        return all(
            r["checking"] >= 0 and r["savings"] >= 0
            for r in state["accounts"].values()
        )

    transact_amounts = (-2, -1, 0, 1)
    return BenchmarkSpec(
        name="smallbank",
        operations=[
            OpSpec(
                "DepositChecking",
                (Param("acct", accounts), Param("v", amounts)),
                deposit_pre,
                deposit_eff,
            ),
            OpSpec(
                "TransactSavings",
                (Param("acct", accounts), Param("v", transact_amounts)),
                transact_pre,
                transact_eff,
            ),
            OpSpec(
                "SendPayment",
                (Param("src", accounts), Param("dst", accounts), Param("v", amounts)),
                payment_pre,
                payment_eff,
            ),
            OpSpec(
                "Amalgamate",
                (Param("src", accounts), Param("dst", accounts), Param("v", amounts)),
                payment_pre,  # same shape: move v of src's checking
                payment_eff,
            ),
        ],
        states=states,
        invariant=invariant,
    )


# ---------------------------------------------------------------------------
# Courseware
# ---------------------------------------------------------------------------


def courseware_spec() -> BenchmarkSpec:
    """Courseware as Hamsaz specifies it: students, courses and enrolments
    with referential integrity as the permissibility condition."""

    student_ids = (1, 2)
    course_ids = (1, 2, 101)  # 101 doubles as the freshly allocated ID
    fresh_ids = (101, 102)

    def register_pre(state, args):
        return args["sid"] not in state["students"]

    def register_eff(state, args):
        state["students"][args["sid"]] = {}

    def addcourse_pre(state, args):
        return args["cid"] not in state["courses"]

    def addcourse_eff(state, args):
        state["courses"][args["cid"]] = {}

    def enroll_pre(state, args):
        # Referential integrity only; re-enrolment is an idempotent set-add
        # (Hamsaz models enrolments as a set).
        return args["sid"] in state["students"] and args["cid"] in state["courses"]

    def enroll_eff(state, args):
        state["enrolments"][(args["sid"], args["cid"])] = {}

    def delete_pre(state, args):
        # Referential integrity: no enrolment may reference the course.
        return all(cid != args["cid"] for (_, cid) in state["enrolments"])

    def delete_eff(state, args):
        state["courses"].pop(args["cid"], None)

    def states() -> list[SpecState]:
        out = []
        for n_students, n_courses in itertools.product((0, 1, 2), repeat=2):
            students = {sid: {} for sid in student_ids[:n_students]}
            courses = {cid: {} for cid in course_ids[:n_courses]}
            for enrol_mask in range(2 ** (n_students * n_courses)):
                enrolments = {}
                bit = 0
                for sid in students:
                    for cid in courses:
                        if enrol_mask >> bit & 1:
                            enrolments[(sid, cid)] = {}
                        bit += 1
                out.append(
                    {
                        "students": dict(students),
                        "courses": dict(courses),
                        "enrolments": enrolments,
                    }
                )
        return out

    def invariant(state) -> bool:
        return all(
            sid in state["students"] and cid in state["courses"]
            for (sid, cid) in state["enrolments"]
        )

    return BenchmarkSpec(
        name="courseware",
        operations=[
            OpSpec(
                "Register",
                (Param("sid", fresh_ids, fresh=True),),
                register_pre,
                register_eff,
            ),
            OpSpec(
                "AddCourse",
                (Param("cid", fresh_ids, fresh=True),),
                addcourse_pre,
                addcourse_eff,
            ),
            OpSpec(
                "Enroll",
                (Param("sid", student_ids), Param("cid", course_ids)),
                enroll_pre,
                enroll_eff,
            ),
            OpSpec(
                "DeleteCourse",
                (Param("cid", course_ids),),
                delete_pre,
                delete_eff,
            ),
        ],
        states=states,
        invariant=invariant,
    )


def clone_state(state: SpecState) -> SpecState:
    return _clone(state)
