"""Hamsaz-style baseline analyzer (paper §7, [18]).

Hamsaz analyzes user-supplied object specifications under the
*well-coordination* framework: executions must be locally permissible,
conflict-synchronizing and dependency-preserving.  Its pairwise relations
map onto the paper's checks as follows:

* two operations **conflict** when their effects do not commute
  (conflict-synchronization ⇒ the commutativity check);
* ``P`` **invalidates** ``Q`` when ``P``'s effect can revoke ``Q``'s local
  permissibility (⇒ the semantic / NotInvalidate check).

The analyzer reports both relations for every pair of a specification —
the "Baseline" column for Courseware in paper Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .engine import analyze_spec
from .specs import BenchmarkSpec


@dataclass
class HamsazReport:
    """Pairwise well-coordination relations."""

    benchmark: str
    conflicting: set[frozenset[str]] = field(default_factory=set)
    invalidating: set[frozenset[str]] = field(default_factory=set)

    @property
    def must_synchronize(self) -> set[frozenset[str]]:
        """Pairs that well-coordination forces to coordinate."""
        return self.conflicting | self.invalidating


def analyze(spec: BenchmarkSpec, *, unique_ids: bool = True) -> HamsazReport:
    report = HamsazReport(spec.name)
    for pair, outcome in analyze_spec(spec, unique_ids=unique_ids).items():
        if not outcome.commutes:
            report.conflicting.add(pair)
        if not outcome.not_invalidating:
            report.invalidating.add(pair)
    return report
