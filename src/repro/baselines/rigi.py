"""Rigi-style baseline analyzer (paper §7, [41]).

Rigi/AutoGR analyzes applications whose SQL queries are explicit and
static, encodes tables as arrays (no order component) and asks Z3 for
counterexamples to the same two checking rules.  This baseline consumes
our hand-written static specifications and reports, per operation pair,
whether the pair fails the commutativity and/or semantic check — the
numbers of the "Baseline" column for SmallBank in paper Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .engine import analyze_spec
from .specs import BenchmarkSpec


@dataclass
class RigiReport:
    """Restriction table in Rigi's terms."""

    benchmark: str
    commutativity_failures: set[frozenset[str]] = field(default_factory=set)
    semantic_failures: set[frozenset[str]] = field(default_factory=set)

    @property
    def restrictions(self) -> set[frozenset[str]]:
        return self.commutativity_failures | self.semantic_failures


def analyze(spec: BenchmarkSpec, *, unique_ids: bool = True) -> RigiReport:
    report = RigiReport(spec.name)
    for pair, outcome in analyze_spec(spec, unique_ids=unique_ids).items():
        if not outcome.commutes:
            report.commutativity_failures.add(pair)
        if not outcome.not_invalidating:
            report.semantic_failures.add(pair)
    return report
