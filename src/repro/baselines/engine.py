"""Shared bounded engine for the baseline analyzers.

Implements the two checking rules of §2.2.1 directly over operation
specifications: exhaustive enumeration of the spec's initial states and
argument vectors (the spec domains are tiny by construction).  Entirely
independent of the SOIR/interpreter machinery, so agreement with Noctua
(Table 5) is a genuine two-implementation cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import BenchmarkSpec, OpSpec, SpecState, clone_state


@dataclass(frozen=True)
class SpecCheckOutcome:
    commutes: bool
    not_invalidating: bool
    witness: str = ""

    @property
    def restricted(self) -> bool:
        return not (self.commutes and self.not_invalidating)


def _apply(op: OpSpec, state: SpecState, args: dict) -> SpecState:
    new = clone_state(state)
    op.effect(new, args)
    return new


def _env_pairs(p: OpSpec, q: OpSpec, *, unique_ids: bool):
    for args_p in p.arg_vectors():
        for args_q in q.arg_vectors():
            if unique_ids and _fresh_collision(p, args_p, q, args_q):
                continue
            yield args_p, args_q


def _fresh_collision(p: OpSpec, args_p: dict, q: OpSpec, args_q: dict) -> bool:
    fresh_p = {args_p[par.name] for par in p.params if par.fresh}
    fresh_q = {args_q[par.name] for par in q.params if par.fresh}
    # Two storage-generated IDs never coincide; a fresh ID may coincide
    # with a *plain* argument (a client-supplied ID).
    return bool(fresh_p & fresh_q)


def _feasible(op: OpSpec, args: dict, states: list[SpecState]) -> bool:
    return any(op.precondition(state, args) for state in states)


def check_pair(
    spec: BenchmarkSpec,
    p: OpSpec,
    q: OpSpec,
    *,
    unique_ids: bool = True,
) -> SpecCheckOutcome:
    """Run both checks exhaustively over the spec's finite scope."""
    states = [s for s in spec.states() if spec.invariant(s)]
    commutes = True
    not_invalidating = True
    witness = ""
    for args_p, args_q in _env_pairs(p, q, unique_ids=unique_ids):
        feasible_p = _feasible(p, args_p, states)
        feasible_q = _feasible(q, args_q, states)
        if not (feasible_p and feasible_q):
            continue
        for state in states:
            if commutes:
                s_pq = _apply(q, _apply(p, state, args_p), args_q)
                s_qp = _apply(p, _apply(q, state, args_q), args_p)
                if s_pq != s_qp:
                    commutes = False
                    witness = f"commutativity: {args_p} / {args_q}"
            if not_invalidating:
                p_ok = p.precondition(state, args_p)
                q_ok = q.precondition(state, args_q)
                if p_ok and q_ok:
                    if not p.precondition(_apply(q, state, args_q), args_p):
                        not_invalidating = False
                        witness = f"{q.name} invalidates {p.name}: {args_q}"
                    elif not q.precondition(_apply(p, state, args_p), args_q):
                        not_invalidating = False
                        witness = f"{p.name} invalidates {q.name}: {args_p}"
            if not commutes and not not_invalidating:
                return SpecCheckOutcome(commutes, not_invalidating, witness)
    return SpecCheckOutcome(commutes, not_invalidating, witness)


def analyze_spec(
    spec: BenchmarkSpec, *, unique_ids: bool = True
) -> dict[frozenset[str], SpecCheckOutcome]:
    """All unordered operation pairs (including self-pairs)."""
    results: dict[frozenset[str], SpecCheckOutcome] = {}
    ops = spec.operations
    for i, p in enumerate(ops):
        for q in ops[i:]:
            results[frozenset((p.name, q.name))] = check_pair(
                spec, p, q, unique_ids=unique_ids
            )
    return results
