"""Baseline analyzers: Rigi-style and Hamsaz-style, over static operation
specifications (paper Table 5's comparison column)."""

from . import hamsaz, rigi
from .engine import SpecCheckOutcome, analyze_spec, check_pair
from .specs import BenchmarkSpec, OpSpec, Param, courseware_spec, smallbank_spec

__all__ = [
    "BenchmarkSpec",
    "OpSpec",
    "Param",
    "SpecCheckOutcome",
    "analyze_spec",
    "check_pair",
    "courseware_spec",
    "hamsaz",
    "rigi",
    "smallbank_spec",
]
