"""Differential testing of the verification stack.

The verifier's verdicts are only as trustworthy as their weakest layer:
the scope builder, the enumerative model finder, the symbolic encoding
and the fast-path classifier have each hidden at least one soundness bug
before (see CHANGES.md).  This package hunts that class of bug *by
design* instead of by accident:

* :mod:`repro.difftest.gen` — a seeded, deterministic generator of random
  schemas, SOIR code-path pairs and small mini-ORM applications, weighted
  toward the features that bit us before (unique constraints, FK follows,
  order primitives, guarded arithmetic);
* :mod:`repro.difftest.oracle` — a concrete interleaving oracle: an
  independent, deliberately simple enumeration that executes both
  interleavings of a pair under the reference interpreter and checks
  state convergence, precondition invalidation and schema-invariant
  preservation directly;
* :mod:`repro.difftest.crosscheck` — runs the same pair through the real
  verifier (both engines, fast layers included) and flags any verdict the
  oracle's concrete evidence contradicts;
* :mod:`repro.difftest.shrink` — a delta-debugging shrinker that reduces
  a mismatching case to a minimal schema + command list;
* :mod:`repro.difftest.corpus` — a pinned-corpus format + replayer so
  every mismatch ever found becomes a permanent regression test
  (``tests/corpus/``);
* :mod:`repro.difftest.directed` — a directed-generation engine that
  walks the restricted↔unrestricted boundary by witness-seeded mutation
  instead of blind sampling;
* :mod:`repro.difftest.dpor` — the k-path schedule oracle with
  sleep-set DPOR pruning over footprint independence.

Entry points: ``noctua difftest --seeds N [--shrink] [--replay]`` and
``noctua difftest --directed [--budget N] [--isolation LEVEL] [--k 3]``.
"""

from .corpus import CorpusCase, load_corpus, replay_case, save_corpus_case
from .crosscheck import CrossCheckResult, DiffTestReport, Mismatch, cross_check, run_difftest
from .directed import DirectedConfig, DirectedReport, FlipRecord, probe_case, run_directed
from .dpor import KScheduleReport, KWitness, dpor_schedules, run_schedule_oracle
from .gen import (
    GenConfig,
    GeneratedCase,
    generate_analysis,
    generate_case,
    generate_case_k,
    generate_schema,
)
from .oracle import (
    ISOLATION_LEVELS,
    OracleConfig,
    OracleReport,
    first_divergence_level,
    run_oracle,
)
from .shrink import shrink_case

__all__ = [
    "CorpusCase",
    "CrossCheckResult",
    "DiffTestReport",
    "DirectedConfig",
    "DirectedReport",
    "FlipRecord",
    "GenConfig",
    "GeneratedCase",
    "ISOLATION_LEVELS",
    "KScheduleReport",
    "KWitness",
    "Mismatch",
    "OracleConfig",
    "OracleReport",
    "cross_check",
    "dpor_schedules",
    "first_divergence_level",
    "generate_analysis",
    "generate_case",
    "generate_case_k",
    "generate_schema",
    "load_corpus",
    "replay_case",
    "probe_case",
    "run_difftest",
    "run_directed",
    "run_oracle",
    "run_schedule_oracle",
    "save_corpus_case",
    "shrink_case",
]
