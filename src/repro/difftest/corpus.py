"""Pinned-corpus format and replayer.

Every mismatch the differential tester (or a human) ever finds becomes a
small JSON file under ``tests/corpus/`` that replays forever:

.. code-block:: json

    {
      "format": 1,
      "name": "fuzz-unique-merge",
      "kind": "regression",
      "origin": "difftest seed 17, shrunk",
      "description": "what went wrong and why this pins it",
      "schema": { ... },
      "p": { ... },
      "q": { ... },
      "engines": ["enum", "smt"],
      "expect": {"commutativity": "fail", "semantic": "pass"},
      "config": {"timeout_s": 6.0}
    }

``schema`` / ``p`` / ``q`` use the canonical :mod:`repro.soir.serialize`
encodings.  ``expect`` maps each check to an expected outcome — either a
single outcome name, a ``"a|b"`` alternative, or a per-engine mapping
(``{"enum": "fail", "smt": "conservative"}``).  Two kinds exist:

* ``"regression"`` — a once-mismatching case, now fixed; the replayer
  asserts the pinned verdicts so the bug cannot quietly return;
* ``"over-approximation"`` — an *intentional* divergence from concrete
  semantics (the verifier restricts more than strictly necessary); the
  pinned verdicts document the over-approximation as deliberate.

The replayer (:func:`replay_case`) is what ``tests/test_corpus.py`` and
``noctua difftest --replay`` run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..soir.path import CodePath
from ..soir.schema import Schema
from ..soir.serialize import (
    path_from_obj,
    path_to_obj,
    schema_from_obj,
    schema_to_obj,
)
from ..verifier.enumcheck import CheckConfig
from ..verifier.runner import verify_pair

FORMAT = 1
_KINDS = ("regression", "over-approximation")
_CHECKS = ("commutativity", "semantic")
_ENGINES = ("enum", "smt")


@dataclass
class CorpusCase:
    """One pinned case, 1:1 with a JSON file under ``tests/corpus/``."""

    name: str
    schema: Schema
    p: CodePath
    q: CodePath
    kind: str = "regression"
    origin: str = ""
    description: str = ""
    engines: tuple[str, ...] = _ENGINES
    #: check -> outcome spec (see module docstring)
    expect: dict = field(default_factory=dict)
    #: CheckConfig keyword overrides for the replay
    config: dict = field(default_factory=dict)
    source: Path | None = None

    def check_config(self) -> CheckConfig:
        defaults = {"timeout_s": 6.0}
        defaults.update(self.config)
        return CheckConfig(**defaults)


def case_to_obj(case: CorpusCase) -> dict:
    return {
        "format": FORMAT,
        "name": case.name,
        "kind": case.kind,
        "origin": case.origin,
        "description": case.description,
        "schema": schema_to_obj(case.schema),
        "p": path_to_obj(case.p),
        "q": path_to_obj(case.q),
        "engines": list(case.engines),
        "expect": dict(case.expect),
        "config": dict(case.config),
    }


def case_from_obj(obj: dict, *, source: Path | None = None) -> CorpusCase:
    if obj.get("format") != FORMAT:
        raise ValueError(
            f"unsupported corpus format {obj.get('format')!r} in {source}"
        )
    kind = obj.get("kind", "regression")
    if kind not in _KINDS:
        raise ValueError(f"unknown corpus kind {kind!r} in {source}")
    return CorpusCase(
        name=obj["name"],
        schema=schema_from_obj(obj["schema"]),
        p=path_from_obj(obj["p"]),
        q=path_from_obj(obj["q"]),
        kind=kind,
        origin=obj.get("origin", ""),
        description=obj.get("description", ""),
        engines=tuple(obj.get("engines", _ENGINES)),
        expect=dict(obj.get("expect", {})),
        config=dict(obj.get("config", {})),
        source=source,
    )


def save_corpus_case(case: CorpusCase, directory: str | Path) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    path.write_text(
        json.dumps(case_to_obj(case), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_corpus_file(path: str | Path) -> CorpusCase:
    path = Path(path)
    return case_from_obj(json.loads(path.read_text()), source=path)


def load_corpus(directory: str | Path) -> list[CorpusCase]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_corpus_file(f) for f in sorted(directory.glob("*.json"))]


def _expected_outcomes(spec, engine: str) -> tuple[str, ...] | None:
    """Normalize one check's expectation for one engine, or None.

    A ``portfolio`` replay may surface either backend's verdict (the
    race winner is whichever answers definitively first), so unless a
    case pins ``portfolio`` explicitly, its expectation is the union of
    the enum and smt expectations."""
    if isinstance(spec, dict):
        if engine == "portfolio" and engine not in spec:
            union: list[str] = []
            for lane in _ENGINES:
                for outcome in _expected_outcomes(spec.get(lane), lane) or ():
                    if outcome not in union:
                        union.append(outcome)
            return tuple(union) or None
        spec = spec.get(engine)
    if spec is None:
        return None
    return tuple(s.strip() for s in str(spec).split("|"))


def replay_case(case: CorpusCase,
                *, engines: tuple[str, ...] | None = None) -> list[str]:
    """Re-verify the pinned pair; every violated expectation as a string.

    An empty list means the corpus case still holds.  ``engines``
    overrides the case's own engine list — ``("portfolio",)`` replays
    the whole corpus through the racing backend pair."""
    failures: list[str] = []
    config = case.check_config()
    for engine in (case.engines if engines is None else engines):
        verdict = verify_pair(case.p, case.q, case.schema, config,
                              engine=engine)
        for check in _CHECKS:
            expected = _expected_outcomes(case.expect.get(check), engine)
            if expected is None:
                continue
            got = getattr(verdict, check).outcome.value
            if got not in expected:
                failures.append(
                    f"{case.name}: {engine}/{check} = {got!r}, "
                    f"expected {'|'.join(expected)!r}"
                )
    return failures
