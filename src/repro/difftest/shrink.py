"""Delta-debugging shrinker for mismatching cases.

Given a (schema, P, Q) triple and a predicate — "does the mismatch still
reproduce?" — the shrinker searches for a smaller triple the predicate
still accepts:

1. **ddmin over commands**, each side in turn (Zeller's classic
   complement-removal loop, so guard/effect subsets shrink in large
   steps before single-command probing);
2. **argument pruning** — declared arguments no remaining command
   references are dropped;
3. **schema reduction** — unreferenced relations and models disappear,
   unreferenced non-pk fields are removed (rewriting ``MakeObj`` nodes
   through a generic bottom-up expression rewriter, since the validator
   demands full field coverage), and per-field decorations
   (``unique`` / ``min_value`` / ``choices`` / ``unique_together``) are
   cleared when the mismatch survives without them.

Every candidate is validated (``schema.validate()`` + ``validate_path``
on both sides) before the predicate runs, and a predicate that raises
counts as "not interesting", so the shrinker can never return an
ill-formed case.  Passes repeat to a fixpoint.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..soir import expr as E
from ..soir.path import Argument, CodePath
from ..soir.schema import ModelSchema, Schema
from ..soir.validate import validate_path

Predicate = Callable[[Schema, CodePath, CodePath], bool]


def _valid(schema: Schema, p: CodePath, q: CodePath) -> bool:
    try:
        schema.validate()
        validate_path(p, schema)
        validate_path(q, schema)
    except Exception:
        return False
    return True


def _interesting(schema: Schema, p: CodePath, q: CodePath,
                 predicate: Predicate) -> bool:
    if not _valid(schema, p, q):
        return False
    try:
        return bool(predicate(schema, p, q))
    except Exception:
        return False


# ---------------------------------------------------------------------------
# ddmin
# ---------------------------------------------------------------------------


def _ddmin(items: list, test: Callable[[list], bool]) -> list:
    """Classic delta debugging: a minimal-ish sublist still accepted by
    ``test``.  ``test`` is never called on the full input (assumed to
    pass) but may be called on the empty list."""
    if test([]):
        return []
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if test(candidate):
                items = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


# ---------------------------------------------------------------------------
# Expression rewriting
# ---------------------------------------------------------------------------


def rewrite_expr(node: E.Expr, fn: Callable[[E.Expr], E.Expr]) -> E.Expr:
    """Bottom-up rewrite: children first, then ``fn`` on the rebuilt node."""
    children = node.children()
    new_children = tuple(rewrite_expr(c, fn) for c in children)
    if new_children != children:
        node = node.with_children(new_children)
    return fn(node)


def _rewrite_path(path: CodePath, fn: Callable[[E.Expr], E.Expr]) -> CodePath:
    commands = tuple(
        cmd.with_exprs(tuple(rewrite_expr(e, fn) for e in cmd.exprs()))
        for cmd in path.commands
    )
    return dataclasses.replace(path, commands=commands)


def _drop_makeobj_field(path: CodePath, model: str, fname: str) -> CodePath:
    def fn(node: E.Expr) -> E.Expr:
        if isinstance(node, E.MakeObj) and node.model == model:
            return E.MakeObj(
                model,
                tuple((n, e) for n, e in node.fields if n != fname),
            )
        return node

    return _rewrite_path(path, fn)


# ---------------------------------------------------------------------------
# Reference collection
# ---------------------------------------------------------------------------


def _referenced_arg_names(path: CodePath) -> set[str]:
    names: set[str] = set()
    for cmd in path.commands:
        for node in cmd.walk_exprs():
            if isinstance(node, (E.Var, E.Opaque)):
                names.add(node.name)
    return names


def _referenced_field_names(paths: list[CodePath]) -> set[str]:
    """Every field name any expression reads, writes, filters, orders or
    aggregates by — model-insensitive on purpose (conservative)."""
    names: set[str] = set()
    for path in paths:
        for cmd in path.commands:
            for node in cmd.walk_exprs():
                f = getattr(node, "field", None)
                if isinstance(f, str):
                    names.add(f)
                if isinstance(node, E.MakeObj):
                    pass  # MakeObj coverage is rewritten, not a reference
    return names


# ---------------------------------------------------------------------------
# Shrinking passes
# ---------------------------------------------------------------------------


def _shrink_commands(schema: Schema, p: CodePath, q: CodePath,
                     predicate: Predicate) -> tuple[CodePath, CodePath]:
    def test_p(commands: list) -> bool:
        cand = dataclasses.replace(p, commands=tuple(commands))
        return _interesting(schema, cand, q, predicate)

    p = dataclasses.replace(
        p, commands=tuple(_ddmin(list(p.commands), test_p)),
    )

    def test_q(commands: list) -> bool:
        cand = dataclasses.replace(q, commands=tuple(commands))
        return _interesting(schema, p, cand, predicate)

    q = dataclasses.replace(
        q, commands=tuple(_ddmin(list(q.commands), test_q)),
    )
    return p, q


def _prune_args(schema: Schema, p: CodePath, q: CodePath,
                predicate: Predicate) -> tuple[CodePath, CodePath]:
    out = []
    for path in (p, q):
        used = _referenced_arg_names(path)
        kept = tuple(a for a in path.args if a.name in used)
        if len(kept) != len(path.args):
            cand = dataclasses.replace(path, args=kept)
            other = q if path is p else out[0]
            pair = (cand, other) if path is p else (other, cand)
            if _interesting(schema, pair[0], pair[1], predicate):
                path = cand
        out.append(path)
    return out[0], out[1]


def _without_model(schema: Schema, name: str) -> Schema:
    return Schema(
        models={n: m for n, m in schema.models.items() if n != name},
        relations={
            n: r for n, r in schema.relations.items()
            if r.source != name and r.target != name
        },
    )


def _without_relation(schema: Schema, name: str) -> Schema:
    return Schema(
        models=dict(schema.models),
        relations={n: r for n, r in schema.relations.items() if n != name},
    )


def _replace_model(schema: Schema, model: ModelSchema) -> Schema:
    models = dict(schema.models)
    models[model.name] = model
    return Schema(models=models, relations=dict(schema.relations))


def _shrink_schema(schema: Schema, p: CodePath, q: CodePath,
                   predicate: Predicate) -> tuple[Schema, CodePath, CodePath]:
    touched_models = p.models_touched(schema) | q.models_touched(schema)
    touched_rels = p.relations_touched(schema) | q.relations_touched(schema)

    for rname in sorted(schema.relations):
        if rname in touched_rels:
            continue
        cand = _without_relation(schema, rname)
        if _interesting(cand, p, q, predicate):
            schema = cand

    for mname in sorted(schema.models):
        if mname in touched_models:
            continue
        if any(mname in (r.source, r.target)
               for r in schema.relations.values()):
            continue
        cand = _without_model(schema, mname)
        if _interesting(cand, p, q, predicate):
            schema = cand

    referenced = _referenced_field_names([p, q])
    for mname in sorted(schema.models):
        model = schema.models[mname]
        for f in model.fields:
            if f.name == model.pk or f.name in referenced:
                continue
            new_model = dataclasses.replace(
                model,
                fields=tuple(x for x in model.fields if x.name != f.name),
                unique_together=tuple(
                    g for g in model.unique_together if f.name not in g
                ),
            )
            cand_schema = _replace_model(schema, new_model)
            cand_p = _drop_makeobj_field(p, mname, f.name)
            cand_q = _drop_makeobj_field(q, mname, f.name)
            if _interesting(cand_schema, cand_p, cand_q, predicate):
                schema, p, q = cand_schema, cand_p, cand_q
                model = new_model

    # Clear per-field decorations the mismatch does not need.
    for mname in sorted(schema.models):
        model = schema.models[mname]
        for f in model.fields:
            trimmed = f
            for attr, cleared in (("min_value", None), ("choices", None),
                                  ("unique", False)):
                if getattr(trimmed, attr) == cleared:
                    continue
                if attr == "unique" and f.name == model.pk:
                    continue
                cand_f = dataclasses.replace(trimmed, **{attr: cleared})
                cand_model = dataclasses.replace(
                    model,
                    fields=tuple(
                        cand_f if x.name == f.name else x
                        for x in model.fields
                    ),
                )
                cand_schema = _replace_model(schema, cand_model)
                if _interesting(cand_schema, p, q, predicate):
                    schema, model, trimmed = cand_schema, cand_model, cand_f
        if model.unique_together:
            cand_model = dataclasses.replace(model, unique_together=())
            cand_schema = _replace_model(schema, cand_model)
            if _interesting(cand_schema, p, q, predicate):
                schema = cand_schema
    return schema, p, q


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _size(schema: Schema, p: CodePath, q: CodePath) -> tuple:
    return (
        len(p.commands) + len(q.commands),
        len(p.args) + len(q.args),
        sum(len(m.fields) for m in schema.models.values()),
        len(schema.models) + len(schema.relations),
    )


def shrink_case(
    schema: Schema,
    p: CodePath,
    q: CodePath,
    predicate: Predicate,
    *,
    max_passes: int = 5,
) -> tuple[Schema, CodePath, CodePath]:
    """Minimize ``(schema, p, q)`` while ``predicate`` keeps accepting it.

    The *input* triple must satisfy the predicate; the result always
    does, and is always well-formed."""
    if not _interesting(schema, p, q, predicate):
        raise ValueError("shrink_case: initial case does not reproduce")
    for _ in range(max_passes):
        before = _size(schema, p, q)
        p, q = _shrink_commands(schema, p, q, predicate)
        p, q = _prune_args(schema, p, q, predicate)
        schema, p, q = _shrink_schema(schema, p, q, predicate)
        if _size(schema, p, q) == before:
            break
    return schema, p, q
