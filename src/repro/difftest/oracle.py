"""Concrete interleaving oracle.

An independent, deliberately simple enumeration that decides the same two
questions as the verifier — commutativity and precondition invalidation —
by *brute force over the reference interpreter*, sharing no code with
``verifier/scopes.py`` or either engine's search:

* states are enumerated directly from the schema (every row count per
  model, several fill styles, relation styles, explicit well-formedness
  filtering);
* argument vectors are enumerated from path constants and pk pools, with
  storage-generated fresh IDs pinned to values disjoint from everything
  else (distinct across the pair, per the unique-ID guarantee);
* the commutativity rule applies both effects in both orders from every
  common state and compares final states, confirming a divergence only if
  each argument vector is *generatable* (its precondition holds on some
  enumerated state — including states where the fresh ID already exists);
* the semantic rule executes both paths under generation semantics from
  every common state and re-checks each precondition after the other's
  committed effect;
* additionally, every pair of committed executions is checked for
  *schema-invariant preservation* (unique / unique_together / min_value /
  choices / fk multiplicity / dangling associations) of the concurrent
  result states, relative to what serial execution preserves.

Any witness this oracle reports is real: it is a concrete state plus
concrete arguments, reproducible with two ``apply_path``/``run_path``
calls.  Absence of a witness only means "none within this budget".
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from ..soir import expr as E
from ..soir.interp import apply_path, run_path
from ..soir.path import Argument, CodePath
from ..soir.schema import Schema
from ..soir.state import DBState
from ..soir.types import BOOL, DATETIME, FLOAT, INT, STRING, SoirType


@dataclass(frozen=True)
class OracleConfig:
    """Budget knobs.  Defaults are sized for generated two-model schemas."""

    rows_per_model: int = 2
    max_states: int = 20
    max_env_pairs: int = 36
    #: hard cap on (state, env_p, env_q) combinations examined per check.
    max_combos: int = 4000
    seed: int = 0xD1FF


@dataclass
class OracleWitness:
    """A concrete counterexample found by the oracle."""

    kind: str  # "commutativity" | "semantic" | "invariant"
    state: DBState
    env_p: dict
    env_q: dict
    detail: str = ""


@dataclass
class OracleReport:
    """The oracle's findings for one pair."""

    commutativity: OracleWitness | None = None
    semantic: OracleWitness | None = None
    invariant: OracleWitness | None = None
    states_examined: int = 0
    env_pairs_examined: int = 0
    combos_examined: int = 0
    notes: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Schema invariants
# ---------------------------------------------------------------------------


def schema_violations(state: DBState, schema: Schema) -> list[str]:
    """Every schema invariant the state breaks, as human-readable strings."""
    out: list[str] = []
    for m in schema.models.values():
        table = state.tables.get(m.name, {})
        for f in m.fields:
            values = [row.get(f.name) for row in table.values()]
            non_null = [v for v in values if v is not None]
            if f.unique and len(set(map(repr, non_null))) != len(non_null):
                out.append(f"duplicate values in unique {m.name}.{f.name}")
            if f.min_value is not None:
                for v in non_null:
                    if isinstance(v, (int, float)) and v < f.min_value:
                        out.append(
                            f"{m.name}.{f.name}={v!r} below min {f.min_value}"
                        )
            if f.choices is not None:
                for v in non_null:
                    if v not in f.choices:
                        out.append(f"{m.name}.{f.name}={v!r} not in choices")
            if not f.nullable and f.name != m.pk:
                # NULL in a non-nullable column can only enter via an
                # explicit NoneLit write; generated paths never do that
                # unless the field is nullable, so flag it.
                if any(v is None for v in values):
                    out.append(f"NULL in non-nullable {m.name}.{f.name}")
        for pk, row in table.items():
            if row.get(m.pk) != pk:
                out.append(f"{m.name} row keyed {pk!r} carries pk "
                           f"{row.get(m.pk)!r}")
        for group in m.unique_together:
            seen: set[str] = set()
            for row in table.values():
                key = repr(tuple(row.get(f) for f in group))
                if key in seen:
                    out.append(f"unique_together violation {m.name}{group}")
                seen.add(key)
    for r in schema.relations.values():
        pairs = state.assocs.get(r.name, set())
        src_table = state.tables.get(r.source, {})
        dst_table = state.tables.get(r.target, {})
        for s, t in pairs:
            if s not in src_table or t not in dst_table:
                out.append(f"dangling association {r.name}:{(s, t)!r}")
        if r.kind == "fk":
            sources = [s for s, _ in pairs]
            if len(set(map(repr, sources))) != len(sources):
                out.append(f"fk {r.name} source linked twice")
    return out


# ---------------------------------------------------------------------------
# Domain derivation (independent of verifier/scopes.py)
# ---------------------------------------------------------------------------


def _path_constants(paths: list[CodePath]) -> dict[SoirType, set]:
    out: dict[SoirType, set] = {INT: set(), STRING: set(), FLOAT: set()}
    for path in paths:
        for cmd in path.commands:
            for node in cmd.walk_exprs():
                if isinstance(node, E.Lit) and node.lit_type in out:
                    if isinstance(node.value, (int, float, str)) and not (
                        isinstance(node.value, bool)
                    ):
                        out[node.lit_type].add(node.value)
    return out


class _Domains:
    """Per-type argument/field value pools for one pair of paths."""

    def __init__(self, schema: Schema, p: CodePath, q: CodePath,
                 config: OracleConfig):
        self.schema = schema
        self.config = config
        constants = _path_constants([p, q])
        ints = {0, 1}
        for c in constants[INT]:
            ints.update((c - 1, c, c + 1))
        self.pk_pools: dict[str, list] = {}
        for name, m in schema.models.items():
            if m.pk_field.type == STRING:
                self.pk_pools[name] = [f"{name[:1].lower()}{i + 1}"
                                       for i in range(config.rows_per_model)]
            else:
                self.pk_pools[name] = list(range(1, config.rows_per_model + 1))
        # Fresh pins: one distinct value per fresh argument *per side*,
        # disjoint from every pk pool and every constant.  Keyed by
        # (side, name) rather than name: for a self-pair (P checked
        # against itself) the two sides share argument names but the
        # storage tier still mints distinct IDs for each execution.
        fresh_args = [("p", a) for a in p.args if a.unique_id] + [
            ("q", a) for a in q.args if a.unique_id
        ]
        self.fresh_pins: dict[tuple[str, str], object] = {}
        next_int, next_str = 901, 0
        for side, a in fresh_args:
            if a.type == STRING:
                self.fresh_pins[side, a.name] = f"G{next_str}"
                next_str += 1
            else:
                self.fresh_pins[side, a.name] = next_int
                next_int += 1
        int_pks = sorted(
            v for pool in self.pk_pools.values() for v in pool
            if isinstance(v, int)
        )
        str_pks = sorted(
            v for pool in self.pk_pools.values() for v in pool
            if isinstance(v, str)
        )
        self.by_type: dict[SoirType, list] = {
            INT: sorted(set(int_pks) | ints)[:7],
            STRING: (str_pks + sorted(
                v for v in constants[STRING] if isinstance(v, str)
            ))[:5] + ["s1", "s2"],
            BOOL: [True, False],
            FLOAT: sorted({0.0, 1.0} | constants[FLOAT])[:4],
            DATETIME: [0, 1],
        }
        # A plain argument may collide with a storage-generated fresh ID
        # (the ID travels to another client before the insert replicates).
        fresh_by_type: dict[SoirType, list] = {}
        for side, a in fresh_args:
            fresh_by_type.setdefault(a.type, []).append(
                self.fresh_pins[side, a.name]
            )
        for t, values in fresh_by_type.items():
            self.by_type[t] = self.by_type.get(t, []) + values[:1]

    def field_domain(self, model: str, fname: str) -> list:
        f = self.schema.model(model).field(fname)
        domain = list(self.by_type.get(f.type, [0]))
        if f.min_value is not None:
            domain = [v for v in domain if v >= f.min_value] or [f.min_value]
        if f.choices is not None:
            domain = list(f.choices)
        if f.nullable:
            domain = domain + [None]
        return domain

    def arg_domain(self, arg: Argument, side: str = "p") -> list:
        if arg.unique_id:
            return [self.fresh_pins[side, arg.name]]
        return list(self.by_type.get(arg.type, [None]))


# ---------------------------------------------------------------------------
# State enumeration
# ---------------------------------------------------------------------------


def _collect_args(path: CodePath) -> list[Argument]:
    """Declared arguments plus opaque placeholders, like the checkers."""
    args = list(path.args)
    seen = {a.name for a in args}
    for cmd in path.commands:
        for node in cmd.walk_exprs():
            if isinstance(node, E.Opaque) and node.name not in seen:
                args.append(Argument(node.name, node.opaque_type,
                                     source="opaque"))
                seen.add(node.name)
    return args


def _unique_fill(domain: list, idx: int, taken: set) -> object:
    """A value from ``domain`` distinct from ``taken``, synthesizing one
    when the domain is exhausted."""
    for v in domain[idx:] + domain[:idx]:
        if v is not None and repr(v) not in taken:
            return v
    sample = next((v for v in domain if v is not None), 0)
    if isinstance(sample, str):
        return f"u{idx}"
    return 9000 + idx


def enumerate_states(
    schema: Schema,
    domains: _Domains,
    config: OracleConfig,
    *,
    extra_pk_pools: dict[str, list] | None = None,
) -> list[DBState]:
    """Well-formed states: row-count products × fill styles × relation
    styles, deduplicated, capped at ``max_states`` (plus seeded random
    top-ups when the cap leaves room)."""
    pk_pools = dict(domains.pk_pools)
    if extra_pk_pools:
        for m, extra in extra_pk_pools.items():
            pk_pools[m] = pk_pools.get(m, []) + [
                v for v in extra if v not in pk_pools.get(m, [])
            ]
    models = sorted(schema.models)
    counts = [range(len(pk_pools[m]) + 1) for m in models]
    out: list[DBState] = []
    seen: set = set()

    def build(row_counts, fill_style: int, rel_style: int,
              reverse_order: bool) -> DBState | None:
        state = DBState.empty(schema)
        for mi, mname in enumerate(models):
            m = schema.model(mname)
            pks = pk_pools[mname][: row_counts[mi]]
            if reverse_order:
                pks = list(reversed(pks))
            taken: dict[str, set] = {}
            for idx, pk in enumerate(pks):
                row: dict[str, object] = {m.pk: pk}
                for f in m.fields:
                    if f.name == m.pk:
                        continue
                    domain = domains.field_domain(mname, f.name)
                    grouped = any(
                        f.name in g for g in m.unique_together
                    )
                    if f.unique or grouped:
                        t = taken.setdefault(f.name, set())
                        v = _unique_fill(domain, idx + fill_style, t)
                        t.add(repr(v))
                    else:
                        v = domain[(idx + fill_style) % len(domain)]
                    row[f.name] = v
                state.insert_row(mname, pk, row)
        for rname in sorted(schema.relations):
            rel = schema.relation(rname)
            sources = list(state.table(rel.source))
            targets = list(state.table(rel.target))
            if rel.kind == "fk" and not rel.nullable and not targets:
                if sources:
                    return None  # sources would violate the non-null FK
                continue
            if rel_style == 0:
                continue  # no associations (only legal if fk nullable)
            for i, s in enumerate(sources):
                if not targets:
                    break
                t = targets[i % len(targets)] if rel_style == 1 else targets[0]
                state.relation(rname).add((s, t))
        if schema.relations and rel_style == 0:
            for rel in schema.relations.values():
                if rel.kind == "fk" and not rel.nullable and \
                        state.table(rel.source):
                    return None
        return state

    styles = [(fs, rs, rev)
              for fs in (0, 1, 2)
              for rs in ((0, 1, 2) if schema.relations else (0,))
              for rev in (False, True)]
    for row_counts in itertools.product(*counts):
        for fs, rs, rev in styles:
            state = build(row_counts, fs, rs, rev)
            if state is None:
                continue
            if schema_violations(state, schema):
                continue
            key = state.canonical(with_order=True)
            if key in seen:
                continue
            seen.add(key)
            out.append(state)
            if len(out) >= config.max_states:
                return out
    return out


# ---------------------------------------------------------------------------
# Environment enumeration
# ---------------------------------------------------------------------------


def enumerate_env_pairs(
    p_args: list[Argument],
    q_args: list[Argument],
    domains: _Domains,
    config: OracleConfig,
) -> list[tuple[dict, dict]]:
    """Exhaustive argument products when they fit the budget, otherwise a
    seeded sample biased toward value collisions across the two sides."""
    specs = [("p", a) for a in p_args] + [("q", a) for a in q_args]
    pools = [domains.arg_domain(a, side) for side, a in specs]
    total = 1
    for pool in pools:
        total *= max(1, len(pool))
    out: list[tuple[dict, dict]] = []
    if total <= config.max_env_pairs:
        for combo in itertools.product(*pools):
            env_p: dict = {}
            env_q: dict = {}
            for (side, arg), v in zip(specs, combo):
                (env_p if side == "p" else env_q)[arg.name] = v
            out.append((env_p, env_q))
        return out
    rng = random.Random(config.seed)
    seen: set = set()
    attempts = config.max_env_pairs * 6
    while len(out) < config.max_env_pairs and attempts > 0:
        attempts -= 1
        env_p, env_q = {}, {}
        drawn: dict[SoirType, list] = {}
        for (side, arg), pool in zip(specs, pools):
            used = drawn.setdefault(arg.type, [])
            if not arg.unique_id and used and rng.random() < 0.5:
                v = rng.choice(used)
            else:
                v = rng.choice(pool)
            used.append(v)
            (env_p if side == "p" else env_q)[arg.name] = v
        key = (tuple(sorted((k, repr(v)) for k, v in env_p.items())),
               tuple(sorted((k, repr(v)) for k, v in env_q.items())))
        if key in seen:
            continue
        seen.add(key)
        out.append((env_p, env_q))
    return out


# ---------------------------------------------------------------------------
# The oracle proper
# ---------------------------------------------------------------------------


def run_oracle(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    config: OracleConfig | None = None,
) -> OracleReport:
    config = config or OracleConfig()
    domains = _Domains(schema, p, q, config)
    states = enumerate_states(schema, domains, config)
    args_p = _collect_args(p)
    args_q = _collect_args(q)
    env_pairs = enumerate_env_pairs(args_p, args_q, domains, config)
    report = OracleReport(
        states_examined=len(states),
        env_pairs_examined=len(env_pairs),
    )

    # Feasibility: the argument vector must be generatable on *some* fresh
    # state — including states where a pinned fresh ID already exists as a
    # row (it is fresh only for the inserting site).
    feas_states: list[DBState] | None = None
    feas_cache: dict = {}

    def feasible(path: CodePath, env: dict) -> bool:
        nonlocal feas_states
        key = (id(path), tuple(sorted((k, repr(v)) for k, v in env.items())))
        hit = feas_cache.get(key)
        if hit is not None:
            return hit
        if feas_states is None:
            extra = {
                m: [v for v in domains.fresh_pins.values()
                    if isinstance(v, type(domains.pk_pools[m][0]))]
                for m in schema.models
                if domains.pk_pools.get(m)
            }
            feas_states = states + enumerate_states(
                schema, domains, config, extra_pk_pools=extra,
            )
        ok = any(
            run_path(path, s, env, schema).committed for s in feas_states
        )
        feas_cache[key] = ok
        return ok

    combos = 0
    for state in states:
        apply_cache: dict = {}
        run_cache: dict = {}

        def applied(path: CodePath, env: dict) -> DBState:
            key = (id(path),
                   tuple(sorted((k, repr(v)) for k, v in env.items())))
            hit = apply_cache.get(key)
            if hit is None:
                hit = apply_path(path, state, env, schema)
                apply_cache[key] = hit
            return hit

        def ran(path: CodePath, env: dict):
            key = (id(path),
                   tuple(sorted((k, repr(v)) for k, v in env.items())))
            hit = run_cache.get(key)
            if hit is None:
                hit = run_path(path, state, env, schema)
                run_cache[key] = hit
            return hit

        for env_p, env_q in env_pairs:
            if combos >= config.max_combos:
                report.notes.append("combo budget exhausted")
                report.combos_examined = combos
                return report
            combos += 1
            # -- commutativity ------------------------------------------
            if report.commutativity is None:
                s_pq = apply_path(q, applied(p, env_p), env_q, schema)
                s_qp = apply_path(p, applied(q, env_q), env_p, schema)
                if not s_pq.same_state(s_qp):
                    if feasible(p, env_p) and feasible(q, env_q):
                        report.commutativity = OracleWitness(
                            "commutativity", state, env_p, env_q,
                            detail="application orders diverge",
                        )
            # -- semantic + invariants ----------------------------------
            out_p = ran(p, env_p)
            out_q = ran(q, env_q)
            if not (out_p.committed and out_q.committed):
                continue
            if report.semantic is None:
                if not run_path(p, out_q.state, env_p, schema).committed:
                    report.semantic = OracleWitness(
                        "semantic", state, env_p, env_q,
                        detail="Q invalidates P",
                    )
                elif not run_path(q, out_p.state, env_q, schema).committed:
                    report.semantic = OracleWitness(
                        "semantic", state, env_p, env_q,
                        detail="P invalidates Q",
                    )
            if report.invariant is None:
                witness = _invariant_witness(
                    p, q, schema, state, env_p, env_q,
                )
                if witness is not None:
                    report.invariant = witness
            if (report.commutativity is not None
                    and report.semantic is not None
                    and report.invariant is not None):
                report.combos_examined = combos
                return report
    report.combos_examined = combos
    return report


def _invariant_witness(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    state: DBState,
    env_p: dict,
    env_q: dict,
) -> OracleWitness | None:
    """A concurrent application order that breaks a schema invariant which
    serial execution would have preserved.

    Only flagged when at least one serial order runs both paths to commit
    *and* ends invariant-clean: if every serial execution already violates
    (or aborts), the violation is the generated app's own doing, not a
    consistency anomaly."""
    s_pq = apply_path(q, apply_path(p, state, env_p, schema), env_q, schema)
    s_qp = apply_path(p, apply_path(q, state, env_q, schema), env_p, schema)
    viols = schema_violations(s_pq, schema) or schema_violations(s_qp, schema)
    if not viols:
        return None

    def serial_clean(first: CodePath, env_1: dict,
                     second: CodePath, env_2: dict) -> bool:
        o1 = run_path(first, state, env_1, schema)
        if not o1.committed:
            return False
        o2 = run_path(second, o1.state, env_2, schema)
        if not o2.committed:
            return False
        return not schema_violations(o2.state, schema)

    if serial_clean(p, env_p, q, env_q) or serial_clean(q, env_q, p, env_p):
        return OracleWitness(
            "invariant", state, env_p, env_q,
            detail="; ".join(viols[:3]),
        )
    return None
