"""Seeded generator of random schemas, SOIR path pairs and mini-ORM apps.

Everything is template-based, so every generated path is well-formed by
construction (and re-checked with :func:`repro.soir.validate.validate_path`
before it leaves this module).  The template mix is deliberately weighted
toward the features that have hidden verifier bugs before: unique
constraints and ``unique_together`` (merge-time preconditions), FK/m2m
follows and referential actions, order primitives (``orderby`` /
``first`` / ``last``) and ``min_value`` invariant annotations.

Determinism contract: two calls with the same seed and config produce
structurally identical output in any process (no builtin ``hash``, one
``random.Random(seed)`` drives every decision in a fixed order).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..soir import commands as C
from ..soir import expr as E
from ..soir.path import AnalysisResult, Argument, CodePath
from ..soir.schema import FieldSchema, ModelSchema, RelationSchema, Schema
from ..soir.types import (
    BOOL,
    INT,
    STRING,
    Aggregation,
    Comparator,
    Direction,
    DRelation,
    Order,
    SoirType,
)
from ..soir.validate import validate_path


@dataclass(frozen=True)
class GenConfig:
    """Probabilities and bounds of the generator, all seed-independent."""

    #: templates concatenated per path (1..max).
    max_templates: int = 2
    p_second_model: float = 0.65
    p_relation: float = 0.85
    p_m2m: float = 0.2
    #: per non-pk field probability of a unique constraint.
    p_unique: float = 0.35
    p_nullable: float = 0.2
    p_unique_together: float = 0.15
    p_string_pk: float = 0.15
    #: chance an insert guards a unique field explicitly; when omitted the
    #: merge-time unique precondition still protects it — exactly the
    #: asymmetry a symbolic encoding can get wrong.
    p_guard_unique: float = 0.7
    p_guard_exists: float = 0.7


@dataclass(frozen=True)
class GeneratedCase:
    """One generated schema plus a pair of code paths over it (plus any
    extra paths when the case was generated for a k-path schedule)."""

    seed: int
    schema: Schema
    p: CodePath
    q: CodePath
    extras: tuple[CodePath, ...] = ()

    @property
    def paths(self) -> tuple[CodePath, ...]:
        return (self.p, self.q) + self.extras


#: (name, type, min_value) — the per-model field palette.
_FIELD_PALETTE: tuple[tuple[str, SoirType, int | None], ...] = (
    ("count", INT, None),
    ("rank", INT, 0),
    ("tag", STRING, None),
    ("label", STRING, None),
    ("flag", BOOL, None),
)

_MODEL_NAMES = ("Alpha", "Beta")

#: extra model added to k-path schemas (k > 2) so spread paths have a
#: table of their own; never used by pair generation.
_SPREAD_MODEL = "Gamma"


# ---------------------------------------------------------------------------
# Schema generation
# ---------------------------------------------------------------------------


def generate_schema(rng: random.Random, config: GenConfig | None = None) -> Schema:
    config = config or GenConfig()
    schema = Schema()
    names = [_MODEL_NAMES[0]]
    if rng.random() < config.p_second_model:
        names.append(_MODEL_NAMES[1])
    for name in names:
        schema.add_model(_generate_model(rng, name, config))
    if len(names) == 2 and rng.random() < config.p_relation:
        source, target = names if rng.random() < 0.5 else names[::-1]
        kind = "m2m" if rng.random() < config.p_m2m else "fk"
        on_delete = rng.choices(
            ("cascade", "protect", "set_null", "do_nothing"),
            weights=(0.4, 0.25, 0.2, 0.15),
        )[0]
        schema.add_relation(RelationSchema(
            name=f"{source}.to_{target.lower()}",
            source=source,
            target=target,
            kind=kind,
            on_delete=on_delete,
            reverse_name=f"{source.lower()}_set",
            nullable=(on_delete == "set_null") or rng.random() < 0.5,
        ))
    schema.validate()
    return schema


def _generate_model(rng: random.Random, name: str, config: GenConfig) -> ModelSchema:
    if rng.random() < config.p_string_pk:
        pk = FieldSchema("key", STRING, unique=True)
    else:
        pk = FieldSchema("id", INT, unique=True)
    n_fields = rng.randint(1, 3)
    picks = rng.sample(range(len(_FIELD_PALETTE)), n_fields)
    fields = [pk]
    for i in sorted(picks):
        fname, ftype, min_value = _FIELD_PALETTE[i]
        fields.append(FieldSchema(
            fname,
            ftype,
            unique=(ftype is not BOOL and rng.random() < config.p_unique),
            nullable=rng.random() < config.p_nullable,
            min_value=min_value,
        ))
    unique_together: tuple[tuple[str, ...], ...] = ()
    non_pk = [f.name for f in fields[1:]]
    if len(non_pk) >= 2 and rng.random() < config.p_unique_together:
        unique_together = (tuple(non_pk[:2]),)
    return ModelSchema(
        name=name,
        fields=tuple(fields),
        pk=pk.name,
        unique_together=unique_together,
    )


# ---------------------------------------------------------------------------
# Path templates
# ---------------------------------------------------------------------------


class _Ctx:
    """Accumulates one path's arguments and commands; one prefix per
    template instance keeps argument names collision-free."""

    def __init__(self, rng: random.Random, schema: Schema, config: GenConfig):
        self.rng = rng
        self.schema = schema
        self.config = config
        self.args: list[Argument] = []
        self.commands: list[C.Command] = []
        self.prefix = ""

    def add_arg(
        self, stem: str, t: SoirType, *, source: str = "post",
        unique_id: bool = False,
    ) -> E.Var:
        arg = Argument(f"{self.prefix}{stem}", t, source=source,
                       unique_id=unique_id)
        self.args.append(arg)
        return arg.var()

    def cmd(self, command: C.Command) -> None:
        self.commands.append(command)

    def maybe_guard(self, cond: E.Expr, p: float | None = None) -> None:
        if self.rng.random() < (self.config.p_guard_exists if p is None else p):
            self.cmd(C.Guard(cond))

    # -- shared sub-expressions ----------------------------------------

    def pk_arg(self, model: str, stem: str = "pk") -> E.Var:
        t = self.schema.model(model).pk_field.type
        return self.add_arg(stem, t, source="url")

    def one(self, model: str, pk_expr: E.Expr) -> E.Filter:
        """``filter(all<M>, pk == pk_expr)`` — the row named by a pk."""
        return E.Filter(E.All(model), (), self.schema.model(model).pk,
                        Comparator.EQ, pk_expr)

    def obj(self, model: str, pk_expr: E.Expr) -> E.Deref:
        return E.Deref(pk_expr, model)

    def value_expr(self, f: FieldSchema) -> E.Expr:
        """A value for field ``f``: an argument, a literal, or NULL.

        Writes to ``min_value`` fields always respect the annotation —
        argument values get a ``>=`` guard emitted, literals are drawn
        from the legal range — so generated apps *maintain* their
        invariants in any serial execution (the oracle's baseline)."""
        rng = self.rng
        if f.nullable and rng.random() < 0.15:
            return E.NoneLit(f.type)
        if rng.random() < 0.6:
            var = self.add_arg(f"v_{f.name}", f.type)
            if f.min_value is not None:
                self.cmd(C.Guard(E.Cmp(Comparator.GE, var,
                                       E.intlit(f.min_value))))
            return var
        if f.type == BOOL:
            return E.true() if rng.random() < 0.5 else E.false()
        if f.type == INT:
            lo = f.min_value or 0
            return E.intlit(rng.choice((lo, lo + 1, lo + 2)))
        return E.strlit(rng.choice(("a", "b", "c")))

    def writable_fields(self, model: str) -> list[FieldSchema]:
        m = self.schema.model(model)
        return [f for f in m.fields if f.name != m.pk]

    def int_fields(self, model: str) -> list[FieldSchema]:
        return [f for f in self.writable_fields(model) if f.type == INT]

    def bool_fields(self, model: str) -> list[FieldSchema]:
        return [f for f in self.writable_fields(model) if f.type == BOOL]


def _t_insert(ctx: _Ctx, model: str) -> None:
    """Fresh-ID insert: non-existence guard, optional unique-field guards,
    min_value guards, then ``update(singleton(new<M>))``."""
    m = ctx.schema.model(model)
    pk_var = ctx.add_arg("new", m.pk_field.type, source="fresh", unique_id=True)
    fields: list[tuple[str, E.Expr]] = []
    for f in m.fields:
        if f.name == m.pk:
            fields.append((f.name, pk_var))
        else:
            fields.append((f.name, ctx.value_expr(f)))
    make = E.MakeObj(model, tuple(fields))
    ctx.cmd(C.Guard(E.Not(E.Exists(model, pk_var))))
    for f in m.fields:
        if f.name == m.pk:
            continue
        v = make.field_expr(f.name)
        if isinstance(v, E.NoneLit):
            continue
        if f.unique and ctx.rng.random() < ctx.config.p_guard_unique:
            ctx.cmd(C.Guard(E.IsEmpty(
                E.Filter(E.All(model), (), f.name, Comparator.EQ, v)
            )))
    ctx.cmd(C.Update(E.Singleton(make)))


def _t_bump(ctx: _Ctx, model: str) -> None:
    """Read-modify-write increment of an integer field."""
    f = ctx.rng.choice(ctx.int_fields(model))
    pk = ctx.pk_arg(model)
    obj = ctx.obj(model, pk)
    if ctx.rng.random() < 0.5:
        delta: E.Expr = E.intlit(1)
    else:
        delta = ctx.add_arg("delta", INT)
        if f.min_value is not None:
            ctx.cmd(C.Guard(E.Cmp(Comparator.GE, delta, E.intlit(0))))
    ctx.maybe_guard(E.Exists(model, pk))
    new = E.BinOp("+", E.FieldGet(obj, f.name, INT), delta)
    ctx.cmd(C.Update(E.Singleton(E.SetField(f.name, new, obj))))


def _t_withdraw(ctx: _Ctx, model: str) -> None:
    """Guarded decrement: ``new >= lo`` where ``lo`` honours min_value."""
    f = ctx.rng.choice(ctx.int_fields(model))
    pk = ctx.pk_arg(model)
    amount = ctx.add_arg("amt", INT)
    obj = ctx.obj(model, pk)
    new = E.BinOp("-", E.FieldGet(obj, f.name, INT), amount)
    ctx.cmd(C.Guard(E.Exists(model, pk)))
    ctx.cmd(C.Guard(E.Cmp(Comparator.GE, new, E.intlit(f.min_value or 0))))
    ctx.cmd(C.Update(E.Singleton(E.SetField(f.name, new, obj))))


def _t_set_field(ctx: _Ctx, model: str) -> None:
    """Blind or guarded field write via ``mapset`` over a pk filter —
    unique targets exercise the merge-time unique precondition."""
    f = ctx.rng.choice(ctx.writable_fields(model))
    pk = ctx.pk_arg(model)
    value = ctx.value_expr(f)
    ctx.maybe_guard(E.Exists(model, pk))
    ctx.cmd(C.Update(E.MapSet(ctx.one(model, pk), f.name, value)))


def _t_delete(ctx: _Ctx, model: str) -> None:
    pk = ctx.pk_arg(model)
    ctx.maybe_guard(E.Exists(model, pk), 0.5)
    ctx.cmd(C.Delete(ctx.one(model, pk)))


def _t_toggle(ctx: _Ctx, model: str) -> None:
    f = ctx.rng.choice(ctx.bool_fields(model))
    pk = ctx.pk_arg(model)
    obj = ctx.obj(model, pk)
    ctx.maybe_guard(E.Exists(model, pk))
    ctx.cmd(C.Update(E.Singleton(E.SetField(
        f.name, E.Not(E.FieldGet(obj, f.name, BOOL)), obj,
    ))))


def _t_link(ctx: _Ctx, rel: RelationSchema) -> None:
    src = ctx.pk_arg(rel.source, "src")
    dst = ctx.pk_arg(rel.target, "dst")
    ctx.maybe_guard(E.Exists(rel.source, src))
    ctx.maybe_guard(E.Exists(rel.target, dst))
    ctx.cmd(C.Link(rel.name, ctx.obj(rel.source, src), ctx.obj(rel.target, dst)))


def _t_delink(ctx: _Ctx, rel: RelationSchema) -> None:
    src = ctx.pk_arg(rel.source, "src")
    dst = ctx.pk_arg(rel.target, "dst")
    ctx.maybe_guard(E.Exists(rel.source, src), 0.5)
    ctx.cmd(C.Delink(rel.name, ctx.obj(rel.source, src),
                     ctx.obj(rel.target, dst)))


def _t_clearlinks(ctx: _Ctx, rel: RelationSchema) -> None:
    end = ctx.rng.choice(("source", "target"))
    model = rel.source if end == "source" else rel.target
    pk = ctx.pk_arg(model, "obj")
    ctx.maybe_guard(E.Exists(model, pk))
    ctx.cmd(C.ClearLinks(rel.name, ctx.obj(model, pk), end))


def _t_rlink(ctx: _Ctx, rel: RelationSchema) -> None:
    """Bulk link: every source row matching a field filter → one target."""
    src_model = ctx.schema.model(rel.source)
    f = ctx.rng.choice(src_model.fields)
    srcs = E.Filter(E.All(rel.source), (), f.name, Comparator.EQ,
                    ctx.add_arg(f"sel_{f.name}", f.type))
    dst = ctx.pk_arg(rel.target, "dst")
    ctx.maybe_guard(E.Exists(rel.target, dst))
    ctx.cmd(C.RLink(rel.name, srcs, ctx.obj(rel.target, dst)))


def _t_follow_update(ctx: _Ctx, rel: RelationSchema) -> None:
    """Write through a relation hop (forward or reverse)."""
    if ctx.rng.random() < 0.5:
        start, end = rel.source, rel.target
        hop = DRelation(rel.name, Direction.FORWARD)
    else:
        start, end = rel.target, rel.source
        hop = DRelation(rel.name, Direction.BACKWARD)
    pk = ctx.pk_arg(start)
    qs = E.Follow(ctx.one(start, pk), (hop,), end)
    f = ctx.rng.choice(ctx.writable_fields(end))
    ctx.maybe_guard(E.Not(E.IsEmpty(qs)))
    ctx.cmd(C.Update(E.MapSet(qs, f.name, ctx.value_expr(f))))


def _t_ordered_write(ctx: _Ctx, model: str) -> None:
    """Write to the first/last row under an ``orderby`` — exercises the
    order component of the encoding."""
    writable = ctx.writable_fields(model)
    m = ctx.schema.model(model)
    order_field = ctx.rng.choice([f for f in m.fields if f.type != BOOL])
    write_field = ctx.rng.choice(writable)
    ordered = E.OrderBy(E.All(model), order_field.name,
                        ctx.rng.choice((Order.ASC, Order.DESC)))
    pick = E.FirstOf(ordered) if ctx.rng.random() < 0.5 else E.LastOf(ordered)
    ctx.maybe_guard(E.Not(E.IsEmpty(E.All(model))), 0.8)
    ctx.cmd(C.Update(E.Singleton(E.SetField(
        write_field.name, ctx.value_expr(write_field), pick,
    ))))


def _t_agg_guard(ctx: _Ctx, model: str) -> None:
    """Aggregate-bounded write: guard on SUM/CNT then a field write."""
    int_fields = ctx.int_fields(model)
    if int_fields and ctx.rng.random() < 0.5:
        agg = E.Aggregate(E.All(model), Aggregation.SUM,
                          ctx.rng.choice(int_fields).name, INT)
    else:
        m = ctx.schema.model(model)
        agg = E.Aggregate(E.All(model), Aggregation.CNT, m.pk, INT)
    bound = ctx.add_arg("bound", INT)
    op = ctx.rng.choice((Comparator.LE, Comparator.GE, Comparator.LT))
    ctx.cmd(C.Guard(E.Cmp(op, agg, bound)))
    _t_set_field(ctx, model)


def _applicable_templates(
    schema: Schema, ctx: _Ctx,
) -> list[tuple[float, object, object]]:
    """(weight, template_fn, binding) for everything this schema allows."""
    entries: list[tuple[float, object, object]] = []
    for model in schema.models:
        entries.append((3.0, _t_insert, model))
        entries.append((2.0, _t_set_field, model))
        entries.append((1.5, _t_delete, model))
        entries.append((1.5, _t_ordered_write, model))
        entries.append((1.0, _t_agg_guard, model))
        if ctx.int_fields(model):
            entries.append((1.5, _t_bump, model))
            entries.append((2.0, _t_withdraw, model))
        if ctx.bool_fields(model):
            entries.append((1.0, _t_toggle, model))
    for rel in schema.relations.values():
        entries.append((1.0, _t_link, rel))
        entries.append((0.8, _t_delink, rel))
        entries.append((0.8, _t_clearlinks, rel))
        entries.append((0.8, _t_rlink, rel))
        entries.append((2.0, _t_follow_update, rel))
    return entries


def generate_path(
    rng: random.Random,
    schema: Schema,
    name: str,
    *,
    config: GenConfig | None = None,
    view: str = "",
    models: tuple[str, ...] | None = None,
) -> CodePath:
    """One random code path over ``schema``: 1..max_templates templates
    concatenated, arguments prefixed per position.

    ``models`` restricts the path to templates bound to those models
    (relation templates need both endpoints allowed) — how k-path
    generation spreads extra paths onto tables the pair never touches,
    so their footprints stay rw-disjoint and DPOR has traces to prune."""
    config = config or GenConfig()
    ctx = _Ctx(rng, schema, config)
    entries = _applicable_templates(schema, ctx)
    if models is not None:
        allowed = set(models)
        entries = [
            (w, fn, binding) for w, fn, binding in entries
            if (binding in allowed
                if isinstance(binding, str)
                else {binding.source, binding.target} <= allowed)
        ] or entries
    weights = [w for w, _, _ in entries]
    n = rng.randint(1, config.max_templates)
    for position in range(n):
        ctx.prefix = f"{name.lower()}{position}_"
        _, fn, binding = rng.choices(entries, weights=weights)[0]
        fn(ctx, binding)
    path = CodePath(name, tuple(ctx.args), tuple(ctx.commands),
                    view=view or f"{name}_view")
    validate_path(path, schema)
    return path


#: path names for k-path cases, in generation order.
_PATH_NAMES = ("P", "Q", "R", "S", "T", "U", "V", "W")


def generate_case(seed: int, config: GenConfig | None = None) -> GeneratedCase:
    """The unit the differential test consumes: one schema, two paths."""
    return generate_case_k(seed, 2, config)


def generate_case_k(
    seed: int, k: int, config: GenConfig | None = None,
) -> GeneratedCase:
    """One schema plus ``k`` code paths over it.  The first two paths of
    ``generate_case_k(seed, k)`` are identical to ``generate_case(seed)``
    for every ``k`` — extra paths extend the pair case, they never
    reshuffle it — so pairwise and k-path sweeps over the same seed block
    examine the same pairs."""
    if not 2 <= k <= len(_PATH_NAMES):
        raise ValueError(f"k must be in 2..{len(_PATH_NAMES)}, got {k}")
    config = config or GenConfig()
    rng = random.Random(seed)
    schema = generate_schema(rng, config)
    paths = [
        generate_path(rng, schema, _PATH_NAMES[i], config=config)
        for i in range(2)
    ]
    # k-path schemas grow a third model *after* the pair is generated
    # (so P and Q never see it), and extra paths prefer models the pair
    # never touches: realistic workloads mostly hit different tables per
    # endpoint, and fully entangled extras would leave the DPOR pruner
    # nothing to prune — the directed walk's mutations re-entangle them.
    if k > 2:
        schema.add_model(_generate_model(rng, _SPREAD_MODEL, config))
        schema.validate()
        untouched = tuple(sorted(
            set(schema.models)
            - paths[0].models_touched(schema)
            - paths[1].models_touched(schema)
        ))
        for i in range(2, k):
            paths.append(generate_path(
                rng, schema, _PATH_NAMES[i], config=config,
                models=untouched or None,
            ))
    return GeneratedCase(seed=seed, schema=schema, p=paths[0], q=paths[1],
                         extras=tuple(paths[2:]))


def generate_analysis(
    seed: int,
    *,
    n_paths: int = 4,
    config: GenConfig | None = None,
) -> AnalysisResult:
    """A full random mini-application in analyzer-output form.

    Shaped exactly like :func:`repro.analyzer.analyze_application` output
    (``view[index]`` path naming), so it can flow through serialization,
    verification and geo-replication without special-casing."""
    config = config or GenConfig()
    rng = random.Random(seed)
    schema = generate_schema(rng, config)
    result = AnalysisResult(f"difftest-{seed}", schema)
    for i in range(n_paths):
        view = f"View{i}"
        result.paths.append(generate_path(
            rng, schema, f"{view}[0]", config=config, view=view,
        ))
    return result
