"""Directed differential test generation (CLOTHO-style boundary walk).

Random difftest samples (schema, paths) cases blindly and hopes to land
near interesting verdicts.  This module *steers*: starting from a seeded
random case, it walks a mutation graph whose moves are the constraint
and guard edits that move a case across the restricted↔unrestricted
boundary — tighten/loosen ``unique`` / ``unique_together`` /
``min_value``, add/remove guard reads, perturb literal argument domains
— scoring every mutant by **distance to a verdict flip** and expanding
the frontier closest to the boundary.  Verdict flips are exactly the
cases where the engines' decision surface is thinnest, which is where
bounded-scope soundness bugs live (Rahmani et al.'s CLOTHO makes the
same observation for weak-consistency bugs; see PAPERS.md).

The verdict source for the walk is a *probe*: a budget-capped concrete
scan through the oracle's state × environment enumeration that counts
diverging/invalidating combinations instead of stopping at the first
witness.  Probes are two to three orders of magnitude cheaper than an
engine call, so the walk spends its budget exploring; the engines are
consulted only at flips, where a full cross-check runs and any
:class:`~repro.difftest.crosscheck.Mismatch` is routed through the
normal ddmin shrinker into the pinned corpus.

Witness seeding: every concrete witness the walk encounters — oracle
witnesses from probes, and structured ``Counterexample`` environments
harvested from the engines at flip cross-checks — feeds its argument
values and touched columns back into the walk (probe enumeration pools
and mutation targeting), so later steps search near states that already
broke something.

Determinism contract: a walk is a pure function of (seed, per-seed
budget, config).  Each seed's walk derives its own ``random.Random`` —
never shared across seeds — so ``--seeds 5`` equals ``--seeds 3`` plus
``--start 3 --seeds 2`` when the per-seed budget is held fixed
(``budget`` is split evenly across seeds).
"""

from __future__ import annotations

import dataclasses
import random
import time
from collections import Counter
from dataclasses import dataclass, field

from ..engine.reduction import canonical_case, rw_footprint
from ..metrics.registry import inc as _metric_inc
from ..metrics.registry import observe as _metric_observe
from ..soir import commands as C
from ..soir import expr as E
from ..soir.interp import Interpreter, InterpError, PathAborted, apply_path, run_path
from ..soir.path import CodePath
from ..soir.schema import Schema
from ..soir.state import DBState
from ..soir.types import INT, STRING, Comparator
from ..soir.validate import validate_path
from ..verifier.enumcheck import CheckConfig
from ..verifier.restrictions import Outcome
from ..verifier.runner import verify_pair
from .crosscheck import Mismatch, cross_check
from .dpor import dependency_matrix, dpor_schedules, run_schedule_oracle
from .gen import GenConfig, generate_case_k
from .shrink import _rewrite_path
from .oracle import (
    ISOLATION_LEVELS,
    OracleConfig,
    _collect_args,
    _Domains,
    enumerate_env_vectors,
    enumerate_states,
    feasibility_states,
    first_divergence_level,
    schema_violations,
)

_WALK_SALT = 0x9E3779B97F4A7C15


@dataclass(frozen=True)
class DirectedConfig:
    """Budgets and strategy knobs of the directed walk."""

    #: total probe evaluations, split evenly across seeds.
    budget: int = 300
    #: paths per case; k >= 3 probes DPOR-pruned schedules.
    k: int = 2
    #: oracle admissibility level for probe witnesses.
    isolation: str = "por"
    #: "directed" scores and steers; "random" is the unscored A/B arm
    #: (uniform parent pick, uniform operator pick, no witness seeding).
    mode: str = "directed"
    # -- probe budgets (a probe must stay ~100x cheaper than an engine
    # call; these bounds size it for generated two-model schemas) -------
    probe_states: int = 8
    probe_env_vectors: int = 12
    probe_combos: int = 240
    rows_per_model: int = 2
    #: operator draws per expansion before falling back to a fresh case.
    mutation_attempts: int = 12
    #: directed parent selection samples among the best this many nodes.
    frontier_top: int = 6
    #: engine cross-checks per seed walk (flips beyond this are recorded
    #: but not engine-checked; the report counts the drops).
    max_crosschecks_per_seed: int = 6
    gen: GenConfig = GenConfig()

    def probe_oracle(self) -> OracleConfig:
        return OracleConfig(
            rows_per_model=self.rows_per_model,
            max_states=self.probe_states,
            max_env_pairs=self.probe_env_vectors,
            max_combos=self.probe_combos,
            isolation=self.isolation,
        )


@dataclass
class ProbeResult:
    """One bounded concrete evaluation of a case."""

    restricted: bool
    #: distance-to-flip: (0, 1] when restricted (diverging fraction —
    #: smaller is closer to the boundary), [1, 2] when unrestricted
    #: (footprint overlap + guard margins — smaller is closer).
    score: float
    div_frac: float = 0.0
    combos: int = 0
    #: (model, field) cells concrete divergences touched — mutation bias.
    hot: frozenset = frozenset()
    #: argument values harvested from concrete witnesses.
    witness_values: tuple = ()
    schedules_explored: int = 0
    schedules_full: int = 0


@dataclass
class FlipRecord:
    """One mutation step that crossed the verdict boundary."""

    seed: int
    step: int
    op: str
    direction: str  # "restricting" | "relaxing"
    digest_restricted: str
    digest_unrestricted: str
    isolation: str
    #: first isolation level at which the restricted side diverges
    #: (pair cases only; k-path flips carry the walk's level).
    first_level: str | None
    schema: Schema
    paths: tuple[CodePath, ...]          # the restricted side
    other_schema: Schema
    other_paths: tuple[CodePath, ...]    # the unrestricted side

    @property
    def boundary_key(self) -> tuple[str, str]:
        pair = sorted((self.digest_restricted, self.digest_unrestricted))
        return (pair[0], pair[1])

    def to_obj(self) -> dict:
        return {
            "seed": self.seed,
            "step": self.step,
            "op": self.op,
            "direction": self.direction,
            "digest_restricted": self.digest_restricted,
            "digest_unrestricted": self.digest_unrestricted,
            "isolation": self.isolation,
            "first_level": self.first_level,
            "paths": [p.name for p in self.paths],
        }


@dataclass
class DirectedReport:
    """Aggregate result of one directed (or random-arm) run."""

    start: int
    seeds: int
    budget: int
    k: int
    isolation: str
    mode: str
    evals: int = 0
    flips: list[FlipRecord] = field(default_factory=list)
    mismatches: list[Mismatch] = field(default_factory=list)
    stats: Counter = field(default_factory=Counter)
    elapsed_s: float = 0.0

    @property
    def boundary_keys(self) -> set[tuple[str, str]]:
        return {f.boundary_key for f in self.flips}

    @property
    def distinct_flips(self) -> int:
        return len(self.boundary_keys)

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def to_obj(self) -> dict:
        levels = Counter(
            f.first_level or "none" for f in self.flips
        )
        return {
            "start": self.start,
            "seeds": self.seeds,
            "budget": self.budget,
            "k": self.k,
            "isolation": self.isolation,
            "mode": self.mode,
            "evals": self.evals,
            "flips": len(self.flips),
            "distinct_flips": self.distinct_flips,
            "mismatches": len(self.mismatches),
            "first_levels": dict(levels),
            "stats": dict(self.stats),
            "elapsed_s": self.elapsed_s,
            "flip_records": [f.to_obj() for f in self.flips],
        }


# ---------------------------------------------------------------------------
# The probe
# ---------------------------------------------------------------------------


def _diff_cells(a: DBState, b: DBState) -> set:
    """The (model, field) cells — and (model, None) row-presence slots —
    on which two states disagree."""
    out: set = set()
    for model in set(a.tables) | set(b.tables):
        ta = a.tables.get(model, {})
        tb = b.tables.get(model, {})
        for pk in set(ta) | set(tb):
            ra, rb = ta.get(pk), tb.get(pk)
            if ra is None or rb is None:
                out.add((model, None))
                continue
            for f in set(ra) | set(rb):
                if repr(ra.get(f)) != repr(rb.get(f)):
                    out.add((model, f))
    for rel in set(a.assocs) | set(b.assocs):
        if a.assocs.get(rel, set()) != b.assocs.get(rel, set()):
            out.add((rel, None))
    return out


def _guard_margin(
    path: CodePath, state: DBState, env: dict, schema: Schema,
) -> float | None:
    """The smallest |left - right| over the path's numeric guard
    comparisons evaluated at ``state`` — how far the nearest guard is
    from flipping.  ``None`` when no numeric guard evaluates."""
    interp = Interpreter(schema, state.clone(), env)
    best: float | None = None
    numeric_ops = (Comparator.GE, Comparator.LE, Comparator.GT, Comparator.LT)
    for cmd in path.commands:
        if not isinstance(cmd, C.Guard):
            continue
        cond = cmd.cond
        if not (isinstance(cond, E.Cmp) and cond.op in numeric_ops):
            continue
        try:
            left = interp.eval(cond.left)
            right = interp.eval(cond.right)
        except (PathAborted, InterpError):
            continue
        if (isinstance(left, (int, float)) and isinstance(right, (int, float))
                and not isinstance(left, bool)
                and not isinstance(right, bool)):
            margin = abs(float(left) - float(right))
            best = margin if best is None else min(best, margin)
    return best


def _footprint_overlap(paths, schema: Schema) -> float:
    """Fraction of the combined write surface in rw-conflict, maximized
    over path pairs: 0 = provably independent, 1 = fully conflicting."""
    prints = [rw_footprint(p, schema) for p in paths]
    best = 0.0
    for i in range(len(paths)):
        ri, wi = prints[i]
        for j in range(i + 1, len(paths)):
            rj, wj = prints[j]
            conflict = (wi & (rj | wj)) | (wj & (ri | wi))
            denom = len(wi | wj)
            if denom:
                best = max(best, len(conflict) / denom)
    return best


def _harvest_values(*envs: dict) -> tuple:
    out = []
    for env in envs:
        for v in env.values():
            if isinstance(v, bool) or v is None:
                continue
            if isinstance(v, (int, str)) and v not in out:
                out.append(v)
    return tuple(out[:6])


def _inject_values(domains: _Domains, values: tuple) -> None:
    """Feed harvested witness values into the probe's enumeration pools
    (bounded, so pools cannot grow without bound along a walk)."""
    for v in values:
        t = STRING if isinstance(v, str) else INT
        pool = domains.by_type.get(t, [])
        if v not in pool:
            domains.by_type[t] = pool + [v]
    for t in (INT, STRING):
        pool = domains.by_type.get(t)
        if pool and len(pool) > 9:
            domains.by_type[t] = pool[-9:]


def probe_case(
    schema: Schema,
    paths: tuple[CodePath, ...],
    config: DirectedConfig,
    *,
    seed_values: tuple = (),
) -> ProbeResult:
    """One bounded concrete evaluation: counts diverging / invalidating
    (state, env) combinations instead of stopping at the first witness,
    so the count doubles as a distance-to-flip signal."""
    ocfg = config.probe_oracle()
    domains = _Domains(schema, paths, ocfg)
    if seed_values and config.mode == "directed":
        _inject_values(domains, seed_values)
    states = enumerate_states(schema, domains, ocfg)
    args_list = [_collect_args(p) for p in paths]
    vectors = enumerate_env_vectors(args_list, domains, ocfg)
    if len(paths) >= 3:
        return _probe_schedules(
            schema, paths, states, vectors, domains, ocfg, config,
        )
    return _probe_pair(schema, paths, states, vectors, domains, ocfg)


def _make_feasible(schema, paths, states, domains, ocfg):
    feas_states: list = []
    feas_cache: dict = {}

    def feasible(idx: int, env: dict) -> bool:
        key = (idx, tuple(sorted((k, repr(v)) for k, v in env.items())))
        hit = feas_cache.get(key)
        if hit is not None:
            return hit
        if not feas_states:
            feas_states.extend(
                feasibility_states(schema, domains, states, ocfg)
            )
        ok = any(
            run_path(paths[idx], s, env, schema).committed
            for s in feas_states
        )
        feas_cache[key] = ok
        return ok

    return feasible


def _admissible(level, feasible, paths, envs, state, schema) -> bool:
    if level == "eventual":
        return True
    for i, env in enumerate(envs):
        if feasible(i, env):
            continue
        if level == "causal" and any(
            run_path(paths[i],
                     apply_path(paths[j], state, envs[j], schema),
                     env, schema).committed
            for j in range(len(paths)) if j != i
        ):
            continue
        return False
    return True


def _probe_pair(
    schema, paths, states, vectors, domains, ocfg,
) -> ProbeResult:
    p, q = paths
    feasible = _make_feasible(schema, paths, states, domains, ocfg)
    checked = div = sem = 0
    hot: set = set()
    witness_values: tuple = ()
    margins: list[float] = []
    for state in states:
        for envs in vectors:
            if checked >= ocfg.max_combos:
                break
            checked += 1
            env_p, env_q = envs
            s_p = apply_path(p, state, env_p, schema)
            s_q = apply_path(q, state, env_q, schema)
            s_pq = apply_path(q, s_p, env_q, schema)
            s_qp = apply_path(p, s_q, env_p, schema)
            if not s_pq.same_state(s_qp) and _admissible(
                ocfg.isolation, feasible, paths, envs, state, schema,
            ):
                div += 1
                hot |= _diff_cells(s_pq, s_qp)
                if not witness_values:
                    witness_values = _harvest_values(env_p, env_q)
            out_p = run_path(p, state, env_p, schema)
            out_q = run_path(q, state, env_q, schema)
            if not (out_p.committed and out_q.committed):
                continue
            invalidated = (
                not run_path(p, out_q.state, env_p, schema).committed
                or not run_path(q, out_p.state, env_q, schema).committed
            )
            if invalidated:
                sem += 1
                if not witness_values:
                    witness_values = _harvest_values(env_p, env_q)
            else:
                for path, env, after in ((p, env_p, out_q.state),
                                         (q, env_q, out_p.state)):
                    margin = _guard_margin(path, after, env, schema)
                    if margin is not None:
                        margins.append(margin)
    restricted = (div + sem) > 0
    if restricted:
        frac = (div + sem) / max(1, checked)
        score = max(frac, 1e-6)
    else:
        overlap = _footprint_overlap(paths, schema)
        margin_norm = min(1.0, min(margins) / 4.0) if margins else 1.0
        score = 1.0 + 0.5 * (1.0 - overlap) + 0.5 * margin_norm
    return ProbeResult(
        restricted=restricted,
        score=score,
        div_frac=(div + sem) / max(1, checked),
        combos=checked,
        hot=frozenset(hot),
        witness_values=witness_values,
    )


def _probe_schedules(
    schema, paths, states, vectors, domains, ocfg, config,
) -> ProbeResult:
    """k >= 3: divergence across the DPOR-pruned schedule set."""
    k = len(paths)
    dep = dependency_matrix(paths, schema)
    schedules = dpor_schedules(k, dep)
    full = 1
    for i in range(2, k + 1):
        full *= i
    _metric_observe("noctua_difftest_directed_schedules", len(schedules))
    feasible = _make_feasible(schema, paths, states, domains, ocfg)
    checked = div = 0
    hot: set = set()
    witness_values: tuple = ()
    for state in states:
        for envs in vectors:
            if checked >= ocfg.max_combos:
                break
            checked += 1
            finals = []
            for sched in schedules:
                s = state
                for idx in sched:
                    s = apply_path(paths[idx], s, envs[idx], schema)
                finals.append(s)
            base = finals[0]
            diverged = next(
                (f for f in finals[1:] if not f.same_state(base)), None,
            )
            if diverged is not None and _admissible(
                ocfg.isolation, feasible, paths, envs, state, schema,
            ):
                div += 1
                hot |= _diff_cells(base, diverged)
                if not witness_values:
                    witness_values = _harvest_values(*envs)
    restricted = div > 0
    if restricted:
        score = max(div / max(1, checked), 1e-6)
    else:
        overlap = _footprint_overlap(paths, schema)
        score = 1.0 + 0.5 * (1.0 - overlap) + 0.5
    return ProbeResult(
        restricted=restricted,
        score=score,
        div_frac=div / max(1, checked),
        combos=checked,
        hot=frozenset(hot),
        witness_values=witness_values,
        schedules_explored=len(schedules),
        schedules_full=full,
    )


# ---------------------------------------------------------------------------
# Mutation operators
# ---------------------------------------------------------------------------


def _replace_model(schema: Schema, model) -> Schema:
    models = dict(schema.models)
    models[model.name] = model
    return Schema(models=models, relations=dict(schema.relations))


def _replace_field(schema: Schema, mname: str, fname: str, **changes) -> Schema:
    model = schema.models[mname]
    fields = tuple(
        dataclasses.replace(f, **changes) if f.name == fname else f
        for f in model.fields
    )
    return _replace_model(schema, dataclasses.replace(model, fields=fields))


def _pick_field(rng, schema, hot, *, types=None, pred=None):
    """A (model, field) target, biased toward the probe's hot cells."""
    candidates = []
    for mname, model in sorted(schema.models.items()):
        for f in model.fields:
            if f.name == model.pk:
                continue
            if types is not None and f.type not in types:
                continue
            if pred is not None and not pred(f):
                continue
            candidates.append((mname, f))
    if not candidates:
        return None
    hot_hits = [(m, f) for m, f in candidates if (m, f.name) in hot]
    if hot_hits and rng.random() < 0.7:
        return rng.choice(hot_hits)
    return rng.choice(candidates)


def _op_tighten_unique(rng, schema, paths, hot):
    pick = _pick_field(rng, schema, hot, pred=lambda f: not f.unique,
                       types=(INT, STRING))
    if pick is None:
        return None
    m, f = pick
    return _replace_field(schema, m, f.name, unique=True), paths


def _op_loosen_unique(rng, schema, paths, hot):
    pick = _pick_field(rng, schema, hot, pred=lambda f: f.unique)
    if pick is None:
        return None
    m, f = pick
    if f.name == schema.models[m].pk:
        return None
    return _replace_field(schema, m, f.name, unique=False), paths


def _op_add_unique_together(rng, schema, paths, hot):
    for mname in sorted(schema.models, key=lambda _: rng.random()):
        model = schema.models[mname]
        non_pk = [f.name for f in model.fields if f.name != model.pk]
        if len(non_pk) < 2:
            continue
        group = tuple(sorted(rng.sample(non_pk, 2)))
        if group in model.unique_together:
            continue
        return _replace_model(schema, dataclasses.replace(
            model, unique_together=model.unique_together + (group,),
        )), paths
    return None


def _op_drop_unique_together(rng, schema, paths, hot):
    with_groups = [m for m in sorted(schema.models)
                   if schema.models[m].unique_together]
    if not with_groups:
        return None
    model = schema.models[rng.choice(with_groups)]
    groups = list(model.unique_together)
    groups.pop(rng.randrange(len(groups)))
    return _replace_model(schema, dataclasses.replace(
        model, unique_together=tuple(groups),
    )), paths


def _op_raise_min(rng, schema, paths, hot):
    pick = _pick_field(rng, schema, hot, types=(INT,))
    if pick is None:
        return None
    m, f = pick
    new = 0 if f.min_value is None else f.min_value + 1
    return _replace_field(schema, m, f.name, min_value=new), paths


def _op_clear_min(rng, schema, paths, hot):
    pick = _pick_field(rng, schema, hot,
                       pred=lambda f: f.min_value is not None)
    if pick is None:
        return None
    m, f = pick
    return _replace_field(schema, m, f.name, min_value=None), paths


def _op_toggle_nullable(rng, schema, paths, hot):
    pick = _pick_field(rng, schema, hot, pred=lambda f: not f.nullable,
                       types=(INT, STRING))
    if pick is None:
        return None
    m, f = pick
    return _replace_field(schema, m, f.name, nullable=True), paths


def _op_drop_guard(rng, schema, paths, hot):
    guarded = [
        (i, j) for i, p in enumerate(paths)
        for j, cmd in enumerate(p.commands) if isinstance(cmd, C.Guard)
    ]
    if not guarded:
        return None
    i, j = rng.choice(guarded)
    path = paths[i]
    commands = path.commands[:j] + path.commands[j + 1:]
    if not commands:
        return None
    new = dataclasses.replace(path, commands=commands)
    return schema, paths[:i] + (new,) + paths[i + 1:]


def _op_add_guard(rng, schema, paths, hot):
    """Insert a guard *read*: the path's precondition now observes a
    model's row population (non-emptiness), which the other side's
    inserts/deletes can invalidate."""
    i = rng.randrange(len(paths))
    path = paths[i]
    hot_models = [m for m, _ in hot if m in schema.models]
    if hot_models and rng.random() < 0.7:
        model = rng.choice(sorted(set(hot_models)))
    else:
        model = rng.choice(sorted(schema.models))
    guard = C.Guard(E.Not(E.IsEmpty(E.All(model))))
    if any(repr(cmd) == repr(guard) for cmd in path.commands):
        return None
    new = dataclasses.replace(path, commands=(guard,) + path.commands)
    return schema, paths[:i] + (new,) + paths[i + 1:]


def _op_perturb_literal(rng, schema, paths, hot):
    """Shift one literal in one path: ints step ±1, strings cycle a
    small alphabet — moving argument/field value collision patterns."""
    i = rng.randrange(len(paths))
    path = paths[i]
    lits = []
    for cmd in path.commands:
        for node in cmd.walk_exprs():
            if isinstance(node, E.Lit) and not isinstance(node.value, bool):
                if isinstance(node.value, (int, str)):
                    lits.append(node)
    if not lits:
        return None
    target = rng.choice(lits)
    if isinstance(target.value, int):
        replacement = E.Lit(target.value + rng.choice((-1, 1)), INT)
    else:
        alphabet = ("a", "b", "c", "s1")
        pool = [s for s in alphabet if s != target.value] or ["a"]
        replacement = E.Lit(rng.choice(pool), STRING)
    new = _rewrite_path(
        path, lambda node: replacement if node is target else node,
    )
    return schema, paths[:i] + (new,) + paths[i + 1:]


#: (name, restricting?, fn).  ``restricting`` flags operators that tend
#: to move an unrestricted case toward a restricted verdict; the
#: directed walk weights the group pointing *across* the boundary.
_OPERATORS: tuple = (
    ("tighten-unique", True, _op_tighten_unique),
    ("add-unique-together", True, _op_add_unique_together),
    ("raise-min", True, _op_raise_min),
    ("add-guard", True, _op_add_guard),
    ("loosen-unique", False, _op_loosen_unique),
    ("drop-unique-together", False, _op_drop_unique_together),
    ("clear-min", False, _op_clear_min),
    ("drop-guard", False, _op_drop_guard),
    ("toggle-nullable", False, _op_toggle_nullable),
    ("perturb-literal", True, _op_perturb_literal),
)


def _valid_case(schema: Schema, paths) -> bool:
    try:
        schema.validate()
        for p in paths:
            validate_path(p, schema)
    except Exception:
        return False
    return True


def mutate_case(
    rng: random.Random,
    schema: Schema,
    paths: tuple[CodePath, ...],
    *,
    hot: frozenset = frozenset(),
    toward_restricted: bool | None = None,
    attempts: int = 12,
) -> tuple[str, Schema, tuple[CodePath, ...]] | None:
    """One valid mutant of the case, or ``None`` when ``attempts``
    operator draws all fail.  ``toward_restricted`` biases the operator
    pick across the boundary (directed mode); ``None`` picks uniformly
    (the random arm)."""
    for _ in range(attempts):
        if toward_restricted is None:
            name, _, fn = rng.choice(_OPERATORS)
        else:
            weights = [
                3.0 if restricting == toward_restricted else 1.0
                for _, restricting, _ in _OPERATORS
            ]
            name, _, fn = rng.choices(_OPERATORS, weights=weights)[0]
        result = fn(rng, schema, paths, hot)
        if result is None:
            continue
        new_schema, new_paths = result
        if _valid_case(new_schema, new_paths):
            return name, new_schema, tuple(new_paths)
    return None


# ---------------------------------------------------------------------------
# The walk
# ---------------------------------------------------------------------------


@dataclass
class _Node:
    schema: Schema
    paths: tuple[CodePath, ...]
    ev: ProbeResult
    digest: str
    op: str = "seed"


def _select_parent(nodes: list, rng: random.Random, mode: str) -> "_Node":
    if mode != "directed":
        return rng.choice(nodes)
    ranked = sorted(nodes, key=lambda n: n.ev.score)
    top = ranked[:max(1, min(len(ranked), 6))]
    weights = [2.0 ** -i for i in range(len(top))]
    return rng.choices(top, weights=weights)[0]


def _k_schedule_mismatches(
    flip: FlipRecord, check_config: CheckConfig, probe_cfg: OracleConfig,
) -> list[Mismatch]:
    """k >= 3 flips: localize the restricted side's schedule divergence
    to an adjacent pair swap at a concrete well-formed intermediate
    state; if the engines pass that pair, the k-schedule found a
    concrete miss of the pairwise bounded scopes."""
    report = run_schedule_oracle(flip.paths, flip.schema, probe_cfg)
    w = report.divergence
    if w is None or schema_violations(w.mid_state, flip.schema):
        return []
    i, j = w.pair
    p, q = flip.paths[i], flip.paths[j]
    out = []
    for engine in ("enum", "smt"):
        verdict = verify_pair(p, q, flip.schema, check_config, engine=engine)
        comm = verdict.commutativity
        if comm is not None and comm.outcome is Outcome.PASS:
            out.append(Mismatch(
                kind=f"k-schedule-missed-by-{engine}",
                check="commutativity",
                detail=(
                    f"{report.k}-path schedule diverges through an "
                    f"intermediate state but {engine} passed the "
                    f"localized pair ({p.name}, {q.name}); {w.detail}"
                ),
                seed=flip.seed,
                schema=flip.schema,
                p=p,
                q=q,
            ))
    return out


def run_directed(
    seeds: int,
    *,
    start: int = 0,
    config: DirectedConfig | None = None,
    check_config: CheckConfig | None = None,
    log=None,
) -> DirectedReport:
    """Walk ``seeds`` independent mutation searches and cross-check every
    distinct verdict flip against the engines.

    ``config.budget`` probe evaluations are split evenly across seeds;
    each seed's walk is a pure function of (seed, per-seed budget,
    config), so a run over seeds ``[a, b)`` followed by one over
    ``[b, c)`` reproduces the run over ``[a, c)`` exactly."""
    config = config or DirectedConfig()
    if config.isolation not in ISOLATION_LEVELS:
        raise ValueError(f"unknown isolation level {config.isolation!r}")
    check_config = check_config or CheckConfig()
    report = DirectedReport(
        start=start, seeds=seeds, budget=config.budget, k=config.k,
        isolation=config.isolation, mode=config.mode,
    )
    per_seed = max(2, config.budget // max(1, seeds))
    t0 = time.perf_counter()
    for seed in range(start, start + seeds):
        _walk_seed(seed, per_seed, config, check_config, report, log)
    report.elapsed_s = time.perf_counter() - t0
    return report


def _walk_seed(seed, per_seed, config, check_config, report, log) -> None:
    rng = random.Random((seed + 1) * _WALK_SALT ^ 0xD12EC7ED)
    directed = config.mode == "directed"
    case = generate_case_k(seed, config.k, config.gen)
    harvested: tuple = ()

    def probe(schema, paths) -> ProbeResult:
        ev = probe_case(schema, paths, config, seed_values=harvested)
        report.evals += 1
        report.stats["evals"] += 1
        _metric_inc("noctua_difftest_directed_evals_total", mode=config.mode)
        return ev

    ev0 = probe(case.schema, case.paths)
    nodes = [_Node(case.schema, case.paths, ev0,
                   canonical_case(case.paths, case.schema)[0])]
    seen_digests = {nodes[0].digest}
    walk_keys: set = set()
    crosschecks = 0
    walk_evals = 1
    step = 0
    while walk_evals < per_seed:
        step += 1
        parent = _select_parent(nodes, rng, config.mode)
        toward = (not parent.ev.restricted) if directed else None
        mutated = mutate_case(
            rng, parent.schema, parent.paths,
            hot=parent.ev.hot if directed else frozenset(),
            toward_restricted=toward,
            attempts=config.mutation_attempts,
        )
        if mutated is None:
            # The neighbourhood is exhausted: restart from a fresh
            # seeded case (derived from this walk's rng, so it stays a
            # pure function of the seed).
            fresh = generate_case_k(
                seed * 1_000_003 + rng.randrange(1 << 20), config.k,
                config.gen,
            )
            op, schema, paths = "reseed", fresh.schema, fresh.paths
        else:
            op, schema, paths = mutated
        digest = canonical_case(paths, schema)[0]
        if digest in seen_digests and mutated is not None:
            report.stats["duplicate_mutants"] += 1
            continue
        seen_digests.add(digest)
        _metric_inc("noctua_difftest_directed_mutations_total", op=op)
        report.stats[f"op_{op}"] += 1
        ev = probe(schema, paths)
        walk_evals += 1
        node = _Node(schema, paths, ev, digest, op=op)
        nodes.append(node)
        if mutated is None or ev.restricted == parent.ev.restricted:
            continue
        # -- a verdict flip: one mutation step crossed the boundary ----
        if ev.restricted:
            res, unres = node, parent
            direction = "restricting"
        else:
            res, unres = parent, node
            direction = "relaxing"
        first_level = None
        if config.k == 2:
            first_level = first_divergence_level(
                res.paths[0], res.paths[1], res.schema,
                config.probe_oracle(),
            )
        flip = FlipRecord(
            seed=seed, step=step, op=op, direction=direction,
            digest_restricted=res.digest,
            digest_unrestricted=unres.digest,
            isolation=config.isolation,
            first_level=first_level,
            schema=res.schema, paths=res.paths,
            other_schema=unres.schema, other_paths=unres.paths,
        )
        report.flips.append(flip)
        report.stats["flips"] += 1
        _metric_inc("noctua_difftest_directed_flips_total",
                    isolation=flip.first_level or config.isolation)
        if flip.boundary_key in walk_keys:
            continue
        walk_keys.add(flip.boundary_key)
        if crosschecks >= config.max_crosschecks_per_seed:
            report.stats["crosscheck_drops"] += 1
            continue
        crosschecks += 1
        mismatches = _crosscheck_flip(flip, config, check_config)
        if mismatches:
            report.mismatches.extend(mismatches)
            if log is not None:
                for m in mismatches:
                    log(f"seed {seed} step {step}: MISMATCH "
                        f"{m.kind}/{m.check}: {m.detail}")
        # Witness seeding: engine counterexample environments (and the
        # probe's own witness values) steer the rest of this walk.
        if directed:
            harvested = tuple(dict.fromkeys(
                harvested + ev.witness_values
                + _engine_witness_values(mismatches)
            ))[:8]
    if log is not None:
        log(f"seed {seed}: {walk_evals} evals, "
            f"{len(walk_keys)} distinct flip(s)")


def _engine_witness_values(mismatches) -> tuple:
    values: list = []
    for m in mismatches:
        for env in (getattr(m, "env_p", None), getattr(m, "env_q", None)):
            if isinstance(env, dict):
                values.extend(_harvest_values(env))
    return tuple(values)


def _crosscheck_flip(
    flip: FlipRecord, config: DirectedConfig, check_config: CheckConfig,
) -> list[Mismatch]:
    """Consult the engines at a boundary crossing: full pair cross-check
    on both sides of the flip (k=2), or localized-pair analysis of the
    k-schedule divergence (k>=3)."""
    if config.k >= 3:
        return _k_schedule_mismatches(flip, check_config,
                                      config.probe_oracle())
    out: list[Mismatch] = []
    for schema, paths in ((flip.schema, flip.paths),
                          (flip.other_schema, flip.other_paths)):
        result = cross_check(
            paths[0], paths[1], schema,
            seed=flip.seed, check_config=check_config,
        )
        for m in result.mismatches:
            m.detail += f" [directed flip, isolation={flip.isolation}]"
            out.append(m)
        # carry structured engine witness envs outward for seeding
        for verdict in (result.enum_verdict, result.smt_verdict):
            for check in (verdict.commutativity, verdict.semantic):
                if check is not None and check.witness is not None:
                    for m in out:
                        if getattr(m, "env_p", None) is None:
                            m.env_p = check.witness.env_p
                            m.env_q = check.witness.env_q
    return out
