"""Cross-validation of the verifier stack against the concrete oracle.

For each generated pair this module computes three independent answers —
the enumerative checker's, the symbolic engine's, and the concrete
oracle's — and flags every combination the soundness argument forbids:

``engine-disagree``
    Both engines returned *definite* outcomes (PASS/FAIL) for the same
    check and they differ.  One of them is wrong.

``oracle-missed-by-enum`` / ``oracle-missed-by-smt``
    The oracle holds a concrete witness (a real state + arguments that
    diverge or invalidate) but the engine said PASS.  Because every
    oracle witness is replayable through the reference interpreter, this
    is always a soundness bug in the engine (or its fast-path
    classifier — the disjoint-footprint prune runs before both engines
    and is exercised here too).

``invariant``
    Both checks PASS under both engines, yet a concurrent application
    order breaks a schema invariant that serial execution preserves.
    PASS/PASS is exactly the claim that concurrent behaviour equals some
    serial composition, so this cannot happen if the verdicts are right.

The deliberately *asymmetric* direction — engine says FAIL, oracle finds
no witness — is **not** a mismatch: the oracle's budget is far smaller
than the checkers' search, so it routinely misses real counterexamples.
Those cases are tallied in ``stats["unconfirmed_fail"]`` instead.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from ..metrics.registry import inc as _metric_inc, observe as _metric_observe
from ..soir.path import CodePath
from ..soir.schema import Schema
from ..verifier.enumcheck import CheckConfig
from ..verifier.restrictions import Outcome, PairVerdict
from ..verifier.runner import verify_pair
from .gen import GenConfig, GeneratedCase, generate_case
from .oracle import OracleConfig, OracleReport, run_oracle

_DEFINITE = (Outcome.PASS, Outcome.FAIL)
_CHECKS = ("commutativity", "semantic")


@dataclass
class Mismatch:
    """One forbidden disagreement between layers."""

    kind: str  # engine-disagree | oracle-missed-by-* | invariant
    check: str  # commutativity | semantic | invariant
    detail: str
    seed: int | None = None
    schema: Schema | None = None
    p: CodePath | None = None
    q: CodePath | None = None
    #: structured engine witness environments, when an engine produced a
    #: concrete counterexample for the same pair (directed difftest
    #: harvests these to seed its mutation walk).
    env_p: dict | None = None
    env_q: dict | None = None

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.check)


@dataclass
class CrossCheckResult:
    """All three layers' answers for one pair, plus any mismatches."""

    enum_verdict: PairVerdict
    smt_verdict: PairVerdict
    oracle: OracleReport
    mismatches: list[Mismatch]
    stats: Counter
    seed: int | None = None


@dataclass
class DiffTestReport:
    """Aggregate result of a differential-testing run."""

    start: int
    count: int
    mismatches: list[Mismatch] = field(default_factory=list)
    stats: Counter = field(default_factory=Counter)
    elapsed_s: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.mismatches


def _compare(
    enum_v: PairVerdict,
    smt_v: PairVerdict,
    oracle: OracleReport,
    *,
    seed: int | None,
    schema: Schema,
    p: CodePath,
    q: CodePath,
) -> tuple[list[Mismatch], Counter]:
    mismatches: list[Mismatch] = []
    stats: Counter = Counter()

    def mk(kind: str, check: str, detail: str) -> Mismatch:
        return Mismatch(kind, check, detail, seed=seed,
                        schema=schema, p=p, q=q)

    for check in _CHECKS:
        e = getattr(enum_v, check).outcome
        s = getattr(smt_v, check).outcome
        stats[f"enum_{check}_{e.value}"] += 1
        stats[f"smt_{check}_{s.value}"] += 1
        if e in _DEFINITE and s in _DEFINITE and e != s:
            mismatches.append(mk(
                "engine-disagree", check,
                f"enum={e.value} smt={s.value}",
            ))
        witness = getattr(oracle, check)
        if witness is not None:
            if e is Outcome.PASS:
                mismatches.append(mk(
                    "oracle-missed-by-enum", check,
                    f"concrete witness exists ({witness.detail}) "
                    f"but enum checker passed",
                ))
            if s is Outcome.PASS:
                mismatches.append(mk(
                    "oracle-missed-by-smt", check,
                    f"concrete witness exists ({witness.detail}) "
                    f"but smt engine passed",
                ))
        elif Outcome.FAIL in (e, s):
            stats["unconfirmed_fail"] += 1

    if oracle.invariant is not None:
        all_pass = all(
            getattr(v, check).outcome is Outcome.PASS
            for v in (enum_v, smt_v)
            for check in _CHECKS
        )
        if all_pass:
            mismatches.append(mk(
                "invariant", "invariant",
                f"pair verified safe but a concurrent order violates: "
                f"{oracle.invariant.detail}",
            ))
        else:
            stats["invariant_on_restricted_pair"] += 1
    return mismatches, stats


def cross_check(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    *,
    seed: int | None = None,
    check_config: CheckConfig | None = None,
    oracle_config: OracleConfig | None = None,
) -> CrossCheckResult:
    """Run one pair through every layer and compare the answers."""
    check_config = check_config or CheckConfig()
    enum_v = verify_pair(p, q, schema, check_config, engine="enum")
    smt_v = verify_pair(p, q, schema, check_config, engine="smt")
    oracle = run_oracle(p, q, schema, oracle_config)
    mismatches, stats = _compare(
        enum_v, smt_v, oracle, seed=seed, schema=schema, p=p, q=q,
    )
    return CrossCheckResult(
        enum_verdict=enum_v,
        smt_verdict=smt_v,
        oracle=oracle,
        mismatches=mismatches,
        stats=stats,
        seed=seed,
    )


def mismatch_keys(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    *,
    check_config: CheckConfig | None = None,
    oracle_config: OracleConfig | None = None,
) -> set[tuple[str, str]]:
    """The set of ``(kind, check)`` mismatches a pair currently exhibits.

    This is the predicate the shrinker preserves: a reduction step is
    kept only while the original mismatch key stays in this set."""
    result = cross_check(
        p, q, schema,
        check_config=check_config, oracle_config=oracle_config,
    )
    return {m.key for m in result.mismatches}


def run_difftest(
    seeds: int,
    *,
    start: int = 0,
    gen_config: GenConfig | None = None,
    check_config: CheckConfig | None = None,
    oracle_config: OracleConfig | None = None,
    log=None,
) -> DiffTestReport:
    """Generate ``seeds`` cases from ``start`` and cross-check each one."""
    report = DiffTestReport(start=start, count=seeds)
    t0 = time.perf_counter()
    for seed in range(start, start + seeds):
        case_start = time.perf_counter()
        case: GeneratedCase = generate_case(seed, gen_config)
        result = cross_check(
            case.p, case.q, case.schema,
            seed=seed,
            check_config=check_config,
            oracle_config=oracle_config,
        )
        report.stats.update(result.stats)
        report.stats["cases"] += 1
        _metric_inc("noctua_difftest_cases_total")
        _metric_observe("noctua_difftest_case_seconds",
                        time.perf_counter() - case_start)
        for m in result.mismatches:
            _metric_inc("noctua_difftest_mismatches_total", kind=m.kind)
        if result.mismatches:
            report.mismatches.extend(result.mismatches)
            if log is not None:
                for m in result.mismatches:
                    log(f"seed {seed}: MISMATCH {m.kind}/{m.check}: "
                        f"{m.detail}")
        elif log is not None and (seed - start + 1) % 25 == 0:
            log(f"... {seed - start + 1}/{seeds} seeds clean")
    report.elapsed_s = time.perf_counter() - t0
    return report
