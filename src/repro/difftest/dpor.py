"""DPOR-pruned k-path schedule oracle.

The pair oracle asks "do the two application orders of *two* effects
converge?".  Replicated anomalies are not limited to pairs: three
effects can pairwise commute inside the pairwise oracle's bounded scope
and still diverge through an intermediate state only a longer schedule
reaches.  This module generalizes the concrete oracle to ``k``
concurrently delivered effects (k=3 by default) — every replica applies
all ``k`` committed effects in *some* total order, so the check is
whether all ``k!`` application orders agree.

``k!`` schedules per (state, env-vector) combo is the cost problem, and
dynamic partial-order reduction is the classic fix (Flanagan–Godefroid;
Bouajjani/Enea/Román-Calvo adapt it to weak isolation levels, see
PAPERS.md).  We run a *sleep-set* exploration over a static dependency
relation derived from :func:`repro.engine.reduction.rw_footprint`: two
effects are independent when their column-level footprints are
rw-disjoint, which is exactly the condition the verifier's fast path
already relies on for solver-free PASS verdicts.  Independence implies
concrete commutation from every state (a missed interaction in the
conservative footprint means a missed *prune*, never a missed
conflict), so the pruned schedule set contains one representative per
Mazurkiewicz trace and its divergence verdict equals full enumeration —
``tests/test_difftest_dpor.py`` asserts this equivalence on random
cases rather than trusting the argument.

A k-schedule divergence is *localized* before it is reported: since the
schedule graph is connected by adjacent transpositions, some adjacent
swap of two effects at a concrete intermediate state must already
diverge.  That reduces every k-path anomaly to an ordinary pair
counterexample ``(pair, state, envs)`` that the engines have a verdict
for — if they say PASS for that pair, the k-schedule found a concrete
soundness witness the pairwise scopes missed.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from ..engine.reduction import rw_footprint
from ..soir.interp import apply_path, run_path
from ..soir.path import CodePath
from ..soir.schema import Schema
from ..soir.state import DBState
from .oracle import (
    OracleConfig,
    _Domains,
    _collect_args,
    enumerate_env_vectors,
    enumerate_states,
    feasibility_states,
)


# ---------------------------------------------------------------------------
# Dependency relation + sleep-set exploration
# ---------------------------------------------------------------------------


def dependency_matrix(
    paths: tuple[CodePath, ...] | list[CodePath], schema: Schema,
) -> list[list[bool]]:
    """``dep[i][j]`` — whether effects i and j may interact: their
    column-level footprints are not rw-disjoint.  Symmetric; the diagonal
    is True (an effect never commutes with reordering against itself in
    a way we would want to prune)."""
    prints = [rw_footprint(p, schema) for p in paths]
    n = len(paths)
    dep = [[True] * n for _ in range(n)]
    for i in range(n):
        ri, wi = prints[i]
        for j in range(i + 1, n):
            rj, wj = prints[j]
            disjoint = (
                not (wi & (rj | wj)) and not (wj & (ri | wi))
            )
            dep[i][j] = dep[j][i] = not disjoint
    return dep


def full_schedules(k: int) -> list[tuple[int, ...]]:
    """Every total application order of ``k`` effects."""
    return list(itertools.permutations(range(k)))


def dpor_schedules(
    k: int, dep: list[list[bool]],
) -> list[tuple[int, ...]]:
    """Sleep-set pruned schedule set: at least one representative per
    Mazurkiewicz trace of the dependency relation, at most ``k!``.

    The classic recursion: after exploring event ``e`` from a node,
    ``e`` joins the node's sleep set (its traces are covered); a sleeping
    event stays asleep down a branch only while the branch's events are
    independent of it (a dependent event wakes it, because the new prefix
    is in a different trace)."""
    out: list[tuple[int, ...]] = []

    def explore(prefix: list[int], remaining: frozenset, sleep: set) -> None:
        if not remaining:
            out.append(tuple(prefix))
            return
        sleep = set(sleep)
        for e in sorted(remaining):
            if e in sleep:
                continue
            child_sleep = {s for s in sleep if not dep[s][e]}
            prefix.append(e)
            explore(prefix, remaining - {e}, child_sleep)
            prefix.pop()
            sleep.add(e)

    explore([], frozenset(range(k)), set())
    return out


# ---------------------------------------------------------------------------
# The k-path schedule oracle
# ---------------------------------------------------------------------------


@dataclass
class KWitness:
    """A concrete k-schedule divergence, localized to an adjacent swap."""

    state: DBState
    envs: tuple[dict, ...]
    schedule_a: tuple[int, ...]
    schedule_b: tuple[int, ...]
    #: the localized adjacent transposition: swapping paths ``pair`` at
    #: concrete intermediate state ``mid_state`` already diverges.
    pair: tuple[int, int]
    mid_state: DBState
    detail: str = ""


@dataclass
class KScheduleReport:
    """The schedule oracle's findings for one k-tuple of paths."""

    k: int
    divergence: KWitness | None = None
    schedules_explored: int = 0
    schedules_full: int = 0
    states_examined: int = 0
    env_vectors_examined: int = 0
    combos_examined: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def pruning_ratio(self) -> float:
        if not self.schedules_full:
            return 1.0
        return self.schedules_explored / self.schedules_full


def _apply_schedule(
    paths, envs, state: DBState, schedule: tuple[int, ...], schema: Schema,
) -> DBState:
    for idx in schedule:
        state = apply_path(paths[idx], state, envs[idx], schema)
    return state


def localize_divergence(
    paths,
    envs,
    state: DBState,
    schema: Schema,
) -> tuple[tuple[int, int], DBState] | None:
    """Find an adjacent transposition that diverges: a schedule position
    where swapping the two next effects from the concrete prefix state
    yields different final states.  Exists whenever any two schedules'
    finals differ (adjacent transpositions connect the schedule graph,
    and equal-everywhere swaps compose to equal finals)."""
    k = len(paths)
    for schedule in itertools.permutations(range(k)):
        prefix_state = state
        for t in range(k - 1):
            i, j = schedule[t], schedule[t + 1]
            s_ij = apply_path(
                paths[j],
                apply_path(paths[i], prefix_state, envs[i], schema),
                envs[j], schema,
            )
            s_ji = apply_path(
                paths[i],
                apply_path(paths[j], prefix_state, envs[j], schema),
                envs[i], schema,
            )
            if not s_ij.same_state(s_ji):
                return (i, j), prefix_state
            prefix_state = apply_path(
                paths[schedule[t]], prefix_state, envs[schedule[t]], schema,
            )
    return None


def run_schedule_oracle(
    paths: tuple[CodePath, ...] | list[CodePath],
    schema: Schema,
    config: OracleConfig | None = None,
    *,
    prune: bool = True,
) -> KScheduleReport:
    """Check whether all application orders of ``len(paths)`` committed
    effects converge, exploring the DPOR-pruned schedule set (or all
    ``k!`` schedules with ``prune=False`` — the brute-force baseline the
    property test compares against).

    Witness admissibility follows the pair oracle's isolation axis:
    under ``por`` every argument vector must be generatable on some
    fresh state; ``causal`` also admits vectors generated after
    observing one other effect; ``eventual`` admits everything.
    """
    config = config or OracleConfig()
    paths = tuple(paths)
    k = len(paths)
    domains = _Domains(schema, paths, config)
    states = enumerate_states(schema, domains, config)
    args_list = [_collect_args(p) for p in paths]
    vectors = enumerate_env_vectors(args_list, domains, config)
    dep = dependency_matrix(paths, schema)
    schedules = dpor_schedules(k, dep) if prune else full_schedules(k)
    report = KScheduleReport(
        k=k,
        schedules_explored=len(schedules),
        schedules_full=math.factorial(k),
        states_examined=len(states),
        env_vectors_examined=len(vectors),
    )

    feas_states: list[DBState] | None = None
    feas_cache: dict = {}

    def feasible(idx: int, env: dict) -> bool:
        nonlocal feas_states
        key = (idx, tuple(sorted((k_, repr(v)) for k_, v in env.items())))
        hit = feas_cache.get(key)
        if hit is not None:
            return hit
        if feas_states is None:
            feas_states = feasibility_states(schema, domains, states, config)
        ok = any(
            run_path(paths[idx], s, env, schema).committed
            for s in feas_states
        )
        feas_cache[key] = ok
        return ok

    def admissible(envs, state: DBState) -> bool:
        if config.isolation == "eventual":
            return True
        for i, env in enumerate(envs):
            if feasible(i, env):
                continue
            if config.isolation == "causal":
                # generatable after observing one concurrently delivered
                # effect counts under causal delivery
                if any(
                    run_path(paths[i],
                             apply_path(paths[j], state, envs[j], schema),
                             env, schema).committed
                    for j in range(k) if j != i
                ):
                    continue
            return False
        return True

    combos = 0
    for state in states:
        for envs in vectors:
            if combos >= config.max_combos:
                report.notes.append("combo budget exhausted")
                report.combos_examined = combos
                return report
            combos += 1
            finals = [
                (sched, _apply_schedule(paths, envs, state, sched, schema))
                for sched in schedules
            ]
            base_sched, base = finals[0]
            for sched, final in finals[1:]:
                if final.same_state(base):
                    continue
                if not admissible(envs, state):
                    break
                localized = localize_divergence(paths, envs, state, schema)
                if localized is None:  # pragma: no cover - connectivity
                    report.notes.append("divergence failed to localize")
                    break
                pair, mid_state = localized
                report.divergence = KWitness(
                    state=state,
                    envs=tuple(envs),
                    schedule_a=base_sched,
                    schedule_b=sched,
                    pair=pair,
                    mid_state=mid_state,
                    detail=(
                        f"{k}-path schedules diverge; localized to "
                        f"adjacent swap of paths {pair[0]} and {pair[1]}"
                    ),
                )
                report.combos_examined = combos
                return report
    report.combos_examined = combos
    return report
