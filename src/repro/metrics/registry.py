"""Zero-dependency, contextvar-scoped metrics registry.

The registry follows the same discipline as ``repro.obs.tracer``: all
instrumentation sites call the module-level helpers (:func:`inc`,
:func:`observe`, :func:`set_gauge`), which resolve the active registry
through one :class:`contextvars.ContextVar` read and no-op when none is
active.  Enabling metrics is therefore a caller decision
(``with metrics.activate(registry): ...``) and un-metered runs pay a
single attribute read per site.

Three instrument kinds are supported:

* **counter** — monotonically increasing float (``inc``).
* **gauge** — last-write-wins float (``set_gauge``).
* **histogram** — fixed-bucket distribution (``observe``).  Bucket
  edges are *deterministic*: they come from the family declaration in
  :data:`FAMILIES`, never from the observed data, so two runs (or two
  processes) always produce mergeable, comparable histograms.

Families are declared centrally in :data:`FAMILIES` so that the
exposition layer can emit stable ``HELP``/``TYPE`` metadata and tools
can assert on family presence.  Unknown names raise immediately —
typos in instrumentation sites fail loudly in tests rather than
silently creating a new series.
"""
from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, field
from typing import Iterator

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

# Deterministic bucket edge sets.  Strictly increasing, finite; the
# implicit +Inf bucket is appended by the exposition layer.
SECONDS_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)
MILLIS_BUCKETS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
)
ROUNDS_BUCKETS: tuple[float, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 55)


@dataclass(frozen=True)
class FamilySpec:
    """Declaration of one metric family (name, kind, help, buckets)."""

    name: str
    kind: str
    help: str
    buckets: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (COUNTER, GAUGE, HISTOGRAM):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if self.kind == HISTOGRAM:
            if not self.buckets:
                raise ValueError(f"histogram family {self.name} needs buckets")
            if list(self.buckets) != sorted(set(self.buckets)):
                raise ValueError(
                    f"histogram family {self.name} buckets must be strictly increasing"
                )


def _specs(*specs: FamilySpec) -> dict[str, FamilySpec]:
    return {s.name: s for s in specs}


#: Central family catalogue.  Every instrumentation site references one
#: of these names; the exposition layer derives HELP/TYPE from it.
FAMILIES: dict[str, FamilySpec] = _specs(
    # -- engine / pair sweep -------------------------------------------------
    FamilySpec("noctua_engine_sweeps_total", COUNTER,
               "Pair sweeps executed, by scheduler mode."),
    FamilySpec("noctua_engine_pairs_total", COUNTER,
               "Pairs classified during sweeps, by route "
               "(pruned:<tag> / cached / shared / solved / unknown)."),
    FamilySpec("noctua_engine_classes_total", COUNTER,
               "Signature equivalence classes formed by the reduction "
               "planner (one solver call per class)."),
    FamilySpec("noctua_engine_class_shared_total", COUNTER,
               "Pair verdicts shared from a class representative instead "
               "of being solved."),
    FamilySpec("noctua_engine_pruned_pairs_total", COUNTER,
               "Pairs resolved by solver-free pruning, by tag "
               "(conservative / order / disjoint / rw-disjoint)."),
    FamilySpec("noctua_engine_portfolio_wins_total", COUNTER,
               "Portfolio races won, by backend (first definitive answer)."),
    FamilySpec("noctua_engine_portfolio_agreements_total", COUNTER,
               "Portfolio races where both backends finished and agreed."),
    FamilySpec("noctua_engine_portfolio_disagreements_total", COUNTER,
               "Portfolio races where both backends finished and "
               "disagreed (a cross-check alarm)."),
    FamilySpec("noctua_engine_cache_hits_total", COUNTER,
               "Pair verdicts served from the cross-run cache."),
    FamilySpec("noctua_engine_cache_misses_total", COUNTER,
               "Pairs that had to be solved (or gave up) after a cache miss."),
    FamilySpec("noctua_engine_cache_saved_seconds_total", COUNTER,
               "Solve wall seconds avoided by cache hits."),
    FamilySpec("noctua_engine_cache_quarantines_total", COUNTER,
               "Corrupt cache files quarantined on load."),
    FamilySpec("noctua_engine_checkpoints_total", COUNTER,
               "Incremental cache checkpoints written mid-sweep."),
    FamilySpec("noctua_engine_retries_total", COUNTER,
               "Failed solve attempts that were retried successfully."),
    FamilySpec("noctua_engine_unknowns_total", COUNTER,
               "Pairs conservatively restricted after retry exhaustion."),
    FamilySpec("noctua_engine_failures_total", COUNTER,
               "Solve-attempt failures, by kind (timeout / crash / solver-error)."),
    FamilySpec("noctua_engine_fallbacks_total", COUNTER,
               "Pairs that fell back from the SMT engine to enumeration."),
    FamilySpec("noctua_engine_respawns_total", COUNTER,
               "Worker processes respawned after a pool death."),
    FamilySpec("noctua_engine_pair_solve_seconds", HISTOGRAM,
               "Wall seconds to solve one pair, by backend.",
               SECONDS_BUCKETS),
    # -- solver backends -----------------------------------------------------
    FamilySpec("noctua_solver_calls_total", COUNTER,
               "Backend invocations, by backend and result."),
    FamilySpec("noctua_solver_call_seconds", HISTOGRAM,
               "Wall seconds per backend invocation, by backend.",
               SECONDS_BUCKETS),
    FamilySpec("noctua_solver_clauses", HISTOGRAM,
               "Clauses asserted per SMT solver call.", COUNT_BUCKETS),
    FamilySpec("noctua_solver_candidates", HISTOGRAM,
               "Candidate schedules examined per enumeration call.",
               COUNT_BUCKETS),
    # -- georep runtime ------------------------------------------------------
    FamilySpec("noctua_georep_delivered_total", COUNTER,
               "Operations applied at a replica, by site."),
    FamilySpec("noctua_georep_redelivered_total", COUNTER,
               "Replication log redelivery attempts."),
    FamilySpec("noctua_georep_deduplicated_total", COUNTER,
               "Duplicate deliveries suppressed by idempotent apply."),
    FamilySpec("noctua_georep_delivery_attempts", HISTOGRAM,
               "Delivery attempts needed before a site acked an entry.",
               ROUNDS_BUCKETS),
    FamilySpec("noctua_georep_faults_total", COUNTER,
               "Injected faults observed by the runtime, by kind."),
    FamilySpec("noctua_georep_partition_ms_total", COUNTER,
               "Total milliseconds of injected network partition."),
    FamilySpec("noctua_georep_replication_lag_ms", HISTOGRAM,
               "Simulated WAN lag between commit and remote apply.",
               MILLIS_BUCKETS),
    FamilySpec("noctua_georep_lease_wait_ms", HISTOGRAM,
               "Wait between lease request and grant at the coordinator.",
               MILLIS_BUCKETS),
    FamilySpec("noctua_georep_requests_total", COUNTER,
               "Client requests in the deployment simulator, by op and outcome."),
    FamilySpec("noctua_georep_request_latency_ms", HISTOGRAM,
               "End-to-end request latency in the deployment simulator, by op.",
               MILLIS_BUCKETS),
    # -- chaos harness -------------------------------------------------------
    FamilySpec("noctua_chaos_runs_total", COUNTER,
               "Chaos harness runs, by convergence outcome."),
    FamilySpec("noctua_chaos_recovery_seconds", HISTOGRAM,
               "Wall seconds from heal to full convergence (drain phase).",
               SECONDS_BUCKETS),
    FamilySpec("noctua_chaos_recovery_rounds", HISTOGRAM,
               "Redelivery rounds needed to drain all replication logs.",
               ROUNDS_BUCKETS),
    # -- differential testing ------------------------------------------------
    FamilySpec("noctua_difftest_cases_total", COUNTER,
               "Random differential test cases executed."),
    FamilySpec("noctua_difftest_mismatches_total", COUNTER,
               "Differential mismatches found, by kind."),
    FamilySpec("noctua_difftest_case_seconds", HISTOGRAM,
               "Wall seconds per differential test case.", SECONDS_BUCKETS),
    FamilySpec("noctua_difftest_directed_evals_total", COUNTER,
               "Directed-walk probe evaluations, by mode "
               "(directed / random)."),
    FamilySpec("noctua_difftest_directed_flips_total", COUNTER,
               "Verdict-boundary crossings found by the directed walk, "
               "by first diverging isolation level."),
    FamilySpec("noctua_difftest_directed_mutations_total", COUNTER,
               "Directed-walk mutants probed, by mutation operator."),
    FamilySpec("noctua_difftest_directed_schedules", HISTOGRAM,
               "DPOR-pruned schedules explored per k-path probe.",
               ROUNDS_BUCKETS),
    # -- continuous verification service -------------------------------------
    FamilySpec("noctua_service_cycles_total", COUNTER,
               "Daemon watch cycles, by outcome "
               "(clean / change / initial / forced)."),
    FamilySpec("noctua_service_reverifies_total", COUNTER,
               "Re-verification runs performed by the daemon, by app."),
    FamilySpec("noctua_service_invalidated_pairs_total", COUNTER,
               "Pairs invalidated (scheduled for re-solving) by source "
               "edits, by app."),
    FamilySpec("noctua_service_pruned_entries_total", COUNTER,
               "Stale cache entries dropped by daemon-side pruning, by app."),
    FamilySpec("noctua_service_reloads_total", COUNTER,
               "Restriction-set hot reloads applied by a live deployment."),
    FamilySpec("noctua_service_publishes_total", COUNTER,
               "Restriction-set versions published to subscribers, by app."),
    FamilySpec("noctua_service_restriction_version", GAUGE,
               "Current restriction-set version per registered app."),
    FamilySpec("noctua_service_http_requests_total", COUNTER,
               "Control-plane HTTP requests, by route and status."),
    FamilySpec("noctua_service_cycle_seconds", HISTOGRAM,
               "Wall seconds per daemon re-verification cycle, by app.",
               SECONDS_BUCKETS),
)


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum/count."""

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: tuple[float, ...]):
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.edges)
        while lo < hi:  # first edge >= value (bisect, inclusive upper bound)
            mid = (lo + hi) // 2
            if value <= self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        out, acc = [], 0
        for c in self.counts:
            acc += c
            out.append(acc)
        return out

    def quantile(self, q: float) -> float:
        """Estimate a quantile by linear interpolation within buckets."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        acc = 0
        for i, c in enumerate(self.counts):
            if acc + c >= target and c > 0:
                lo = 0.0 if i == 0 else self.edges[i - 1]
                hi = self.edges[i] if i < len(self.edges) else lo
                frac = (target - acc) / c
                return lo + (hi - lo) * frac
            acc += c
        return self.edges[-1] if self.edges else 0.0


LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Family:
    spec: FamilySpec
    series: dict[LabelKey, object] = field(default_factory=dict)


class MetricsRegistry:
    """Holds all metric families for one metering context.

    Not thread-safe by design: like the tracer, one registry belongs to
    one context (the parallel scheduler folds worker results in the
    parent, so workers never write concurrently).
    """

    def __init__(self, families: dict[str, FamilySpec] | None = None):
        catalogue = FAMILIES if families is None else families
        self._families: dict[str, Family] = {
            name: Family(spec) for name, spec in catalogue.items()
        }

    # -- write path ----------------------------------------------------------

    def _family(self, name: str, kind: str) -> Family:
        fam = self._families.get(name)
        if fam is None:
            raise KeyError(f"unknown metric family {name!r}")
        if fam.spec.kind != kind:
            raise TypeError(
                f"metric family {name!r} is a {fam.spec.kind}, not a {kind}"
            )
        return fam

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        fam = self._family(name, COUNTER)
        key = _label_key(labels)
        fam.series[key] = fam.series.get(key, 0.0) + value  # type: ignore[operator]

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        fam = self._family(name, GAUGE)
        fam.series[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        fam = self._family(name, HISTOGRAM)
        key = _label_key(labels)
        hist = fam.series.get(key)
        if hist is None:
            hist = Histogram(fam.spec.buckets)
            fam.series[key] = hist
        hist.observe(value)  # type: ignore[union-attr]

    # -- read path -----------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Scalar value of one counter/gauge series (0.0 when absent)."""
        fam = self._families[name]
        got = fam.series.get(_label_key(labels))
        return float(got) if got is not None else 0.0  # type: ignore[arg-type]

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label series."""
        fam = self._families[name]
        return float(sum(fam.series.values()))  # type: ignore[arg-type]

    def histogram(self, name: str, **labels: str) -> Histogram | None:
        fam = self._families[name]
        got = fam.series.get(_label_key(labels))
        return got  # type: ignore[return-value]

    def histogram_sum(self, name: str) -> float:
        """Sum of observed values across every series of a histogram."""
        fam = self._family(name, HISTOGRAM)
        return sum(h.sum for h in fam.series.values())  # type: ignore[union-attr]

    def series(self, name: str) -> list[tuple[dict[str, str], object]]:
        fam = self._families[name]
        return [(dict(key), val) for key, val in sorted(fam.series.items())]

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data snapshot: JSON-serializable, deterministically ordered."""
        families = []
        for name in sorted(self._families):
            fam = self._families[name]
            if not fam.series:
                continue
            entry: dict = {
                "name": name,
                "kind": fam.spec.kind,
                "help": fam.spec.help,
                "series": [],
            }
            if fam.spec.kind == HISTOGRAM:
                entry["buckets"] = list(fam.spec.buckets)
            for key, val in sorted(fam.series.items()):
                row: dict = {"labels": dict(key)}
                if fam.spec.kind == HISTOGRAM:
                    hist: Histogram = val  # type: ignore[assignment]
                    row["counts"] = list(hist.counts)
                    row["sum"] = hist.sum
                    row["count"] = hist.count
                else:
                    row["value"] = float(val)  # type: ignore[arg-type]
                entry["series"].append(row)
            families.append(entry)
        return {"version": 1, "families": families}


# -- ambient registry (contextvar) -------------------------------------------

_ACTIVE: contextvars.ContextVar[MetricsRegistry | None] = contextvars.ContextVar(
    "repro_metrics_registry", default=None
)


def current() -> MetricsRegistry | None:
    """The registry active in this context, or None (metrics disabled)."""
    return _ACTIVE.get()


def enabled() -> bool:
    return _ACTIVE.get() is not None


@contextlib.contextmanager
def activate(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` the ambient registry for the dynamic extent."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def inc(name: str, value: float = 1.0, **labels: str) -> None:
    """Increment a counter on the ambient registry; no-op when disabled."""
    reg = _ACTIVE.get()
    if reg is None:
        return
    reg.inc(name, value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Record a histogram observation; no-op when disabled."""
    reg = _ACTIVE.get()
    if reg is None:
        return
    reg.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge on the ambient registry; no-op when disabled."""
    reg = _ACTIVE.get()
    if reg is None:
        return
    reg.set_gauge(name, value, **labels)
