"""Exposition formats for metrics snapshots.

A *snapshot* is the plain-data dict returned by
:meth:`MetricsRegistry.snapshot` — version-tagged, JSON-serializable and
deterministically ordered.  This module renders snapshots three ways:

* **JSON** (`snapshot_to_json` / `snapshot_from_json`) — lossless
  round-trip, the format `noctua metrics --out metrics.json` writes and
  `--diff` consumes.
* **Prometheus text format** (`snapshot_to_prometheus`) — the scrape
  format a future continuous-verification daemon exposes.  Histograms
  become cumulative ``_bucket{le=...}`` series ending at ``+Inf`` plus
  ``_sum`` / ``_count``.  `parse_prometheus` is the matching strict
  parser used by ``tools/check_metrics.py``.
* **Terminal** (`render_table`, `render_diff`) — human-readable
  summaries with estimated p50/p95 for histograms.
"""
from __future__ import annotations

import json

from .registry import COUNTER, GAUGE, HISTOGRAM, Histogram


# -- JSON ---------------------------------------------------------------------

def snapshot_to_json(snapshot: dict) -> str:
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def snapshot_from_json(text: str) -> dict:
    obj = json.loads(text)
    if not isinstance(obj, dict) or obj.get("version") != 1:
        raise ValueError("not a metrics snapshot (missing version: 1)")
    if not isinstance(obj.get("families"), list):
        raise ValueError("not a metrics snapshot (missing families list)")
    return obj


def load_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return snapshot_from_json(fh.read())


# -- Prometheus text format ---------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_labels(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items)
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for fam in snapshot["families"]:
        name, kind = fam["name"], fam["kind"]
        lines.append(f"# HELP {name} {_escape_help(fam['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        if kind in (COUNTER, GAUGE):
            for row in fam["series"]:
                lines.append(
                    f"{name}{_fmt_labels(row['labels'])} {_fmt_value(row['value'])}"
                )
        elif kind == HISTOGRAM:
            edges = fam["buckets"]
            for row in fam["series"]:
                labels = row["labels"]
                acc = 0
                for edge, count in zip(edges, row["counts"]):
                    acc += count
                    le = _fmt_value(float(edge))
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, ('le', le))} {acc}"
                    )
                acc += row["counts"][len(edges)]
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, ('le', '+Inf'))} {acc}"
                )
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} {repr(float(row['sum']))}"
                )
                lines.append(f"{name}_count{_fmt_labels(labels)} {row['count']}")
        else:  # pragma: no cover - registry rejects unknown kinds
            raise ValueError(f"unknown family kind {kind!r}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict]:
    """Strictly parse Prometheus text format back into family dicts.

    Returns ``{family_name: {"kind": ..., "help": ..., "samples":
    [(sample_name, labels, value)]}}``.  Raises ``ValueError`` on
    malformed lines, samples without a preceding TYPE, or histogram
    bucket series that are not cumulative / not terminated by +Inf.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"samples": []})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            if kind not in (COUNTER, GAUGE, HISTOGRAM):
                raise ValueError(f"line {lineno}: unknown TYPE {kind!r}")
            families.setdefault(name, {"samples": []})["kind"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue
        sample_name, labels, value = _parse_sample(line, lineno)
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                base = sample_name[: -len(suffix)]
                break
        if base not in families or "kind" not in families[base]:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no preceding TYPE"
            )
        if base != current:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} outside its TYPE block"
            )
        families[base]["samples"].append((sample_name, labels, value))
    _validate_histograms(families)
    return families


def _parse_sample(line: str, lineno: int) -> tuple[str, dict[str, str], float]:
    if "{" in line:
        name, _, rest = line.partition("{")
        body, _, tail = rest.partition("}")
        labels: dict[str, str] = {}
        for part in _split_labels(body):
            key, eq, val = part.partition("=")
            if not eq or not (val.startswith('"') and val.endswith('"')):
                raise ValueError(f"line {lineno}: malformed label {part!r}")
            labels[key] = (
                val[1:-1]
                .replace('\\"', '"')
                .replace("\\n", "\n")
                .replace("\\\\", "\\")
            )
        value_str = tail.strip()
    else:
        name, _, value_str = line.partition(" ")
        labels = {}
        value_str = value_str.strip()
    if not name or not value_str:
        raise ValueError(f"line {lineno}: malformed sample {line!r}")
    try:
        value = float(value_str)
    except ValueError as exc:
        raise ValueError(f"line {lineno}: bad value {value_str!r}") from exc
    return name, labels, value


def _split_labels(body: str) -> list[str]:
    parts, buf, in_str, escaped = [], [], False, False
    for ch in body:
        if escaped:
            buf.append(ch)
            escaped = False
            continue
        if ch == "\\":
            buf.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_str = not in_str
            buf.append(ch)
            continue
        if ch == "," and not in_str:
            parts.append("".join(buf))
            buf = []
            continue
        buf.append(ch)
    if buf:
        parts.append("".join(buf))
    return [p for p in (s.strip() for s in parts) if p]


def _validate_histograms(families: dict[str, dict]) -> None:
    for name, fam in families.items():
        if fam.get("kind") != HISTOGRAM:
            continue
        by_series: dict[tuple, dict] = {}
        for sample_name, labels, value in fam["samples"]:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            slot = by_series.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if sample_name == f"{name}_bucket":
                slot["buckets"].append((labels.get("le"), value))
            elif sample_name == f"{name}_sum":
                slot["sum"] = value
            elif sample_name == f"{name}_count":
                slot["count"] = value
        for key, slot in by_series.items():
            buckets = slot["buckets"]
            if not buckets or buckets[-1][0] != "+Inf":
                raise ValueError(f"{name}{dict(key)}: buckets must end at +Inf")
            values = [v for _, v in buckets]
            if any(b > a for b, a in zip(values, values[1:])):
                raise ValueError(f"{name}{dict(key)}: bucket counts not cumulative")
            if slot["count"] is None or slot["sum"] is None:
                raise ValueError(f"{name}{dict(key)}: missing _sum or _count")
            if slot["count"] != values[-1]:
                raise ValueError(f"{name}{dict(key)}: _count != +Inf bucket")


# -- terminal rendering -------------------------------------------------------

def _labels_str(labels: dict[str, str]) -> str:
    if not labels:
        return "(no labels)"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def render_table(snapshot: dict) -> list[str]:
    """Human-readable summary of a snapshot, one family per block."""
    lines: list[str] = []
    for fam in snapshot["families"]:
        name, kind = fam["name"], fam["kind"]
        lines.append(f"{name}  [{kind}]  {fam['help']}")
        if kind == HISTOGRAM:
            edges = tuple(fam["buckets"])
            for row in fam["series"]:
                hist = Histogram(edges)
                hist.counts = list(row["counts"])
                hist.sum = row["sum"]
                hist.count = row["count"]
                lines.append(
                    "  {:<40} count={} sum={:.4f} p50={:.4f} p95={:.4f}".format(
                        _labels_str(row["labels"]), hist.count, hist.sum,
                        hist.quantile(0.5), hist.quantile(0.95),
                    )
                )
        else:
            for row in fam["series"]:
                lines.append(
                    "  {:<40} {}".format(
                        _labels_str(row["labels"]), _fmt_value(row["value"])
                    )
                )
    if not lines:
        lines.append("(no metrics recorded)")
    return lines


# -- snapshot diff ------------------------------------------------------------

def _flatten(snapshot: dict) -> dict[tuple, tuple[str, float, float]]:
    """Map (family, labels) -> (kind, value_or_count, sum)."""
    out: dict[tuple, tuple[str, float, float]] = {}
    for fam in snapshot["families"]:
        for row in fam["series"]:
            key = (fam["name"], tuple(sorted(row["labels"].items())))
            if fam["kind"] == HISTOGRAM:
                out[key] = (fam["kind"], float(row["count"]), float(row["sum"]))
            else:
                out[key] = (fam["kind"], float(row["value"]), 0.0)
    return out


def diff_snapshots(before: dict, after: dict) -> list[dict]:
    """Per-series deltas between two snapshots (after - before)."""
    a, b = _flatten(before), _flatten(after)
    rows: list[dict] = []
    for key in sorted(set(a) | set(b)):
        name, labels = key
        kind_a, val_a, sum_a = a.get(key, (None, 0.0, 0.0))
        kind_b, val_b, sum_b = b.get(key, (None, 0.0, 0.0))
        kind = kind_b or kind_a
        if val_a == val_b and sum_a == sum_b:
            continue
        rows.append({
            "name": name,
            "labels": dict(labels),
            "kind": kind,
            "before": val_a,
            "after": val_b,
            "delta": val_b - val_a,
            "sum_delta": sum_b - sum_a,
        })
    return rows


def render_diff(rows: list[dict]) -> list[str]:
    if not rows:
        return ["(no differences)"]
    lines = ["{:<46} {:>12} {:>12} {:>12}".format("series", "before", "after", "delta")]
    for row in rows:
        series = f"{row['name']}{{{_labels_str(row['labels'])}}}"
        unit = " (count)" if row["kind"] == HISTOGRAM else ""
        lines.append(
            "{:<46} {:>12} {:>12} {:>+12g}{}".format(
                series, _fmt_value(row["before"]), _fmt_value(row["after"]),
                row["delta"], unit,
            )
        )
    return lines
