"""Zero-dependency metrics layer (counters, gauges, histograms).

Companion to :mod:`repro.obs`: spans answer "where did this run spend
its time", the metrics registry answers "what are the aggregate rates
and distributions across runs".  Like the tracer it is contextvar
scoped and off by default — instrumentation sites call the module-level
helpers, which no-op at one attribute read when no registry is active.

    from repro import metrics

    registry = metrics.MetricsRegistry()
    with metrics.activate(registry):
        report = verify_application(analysis, config)
    print("\n".join(metrics.render_table(registry.snapshot())))

`repro.metrics` has no repro-internal dependencies, so every layer
(engine, smt, verifier, georep, difftest) can import it without cycles.
"""
from .registry import (
    COUNT_BUCKETS,
    FAMILIES,
    FamilySpec,
    Histogram,
    MILLIS_BUCKETS,
    MetricsRegistry,
    ROUNDS_BUCKETS,
    SECONDS_BUCKETS,
    activate,
    current,
    enabled,
    inc,
    observe,
    set_gauge,
)
from .exposition import (
    diff_snapshots,
    load_snapshot,
    parse_prometheus,
    render_diff,
    render_table,
    snapshot_from_json,
    snapshot_to_json,
    snapshot_to_prometheus,
)

__all__ = [
    "COUNT_BUCKETS",
    "FAMILIES",
    "FamilySpec",
    "Histogram",
    "MILLIS_BUCKETS",
    "MetricsRegistry",
    "ROUNDS_BUCKETS",
    "SECONDS_BUCKETS",
    "activate",
    "current",
    "enabled",
    "inc",
    "observe",
    "set_gauge",
    "diff_snapshots",
    "load_snapshot",
    "parse_prometheus",
    "render_diff",
    "render_table",
    "snapshot_from_json",
    "snapshot_to_json",
    "snapshot_to_prometheus",
]
