"""Path discovery: the branch-state machine of paper Figure 5.

The path finder owns ``curState``: an ordered mapping from branch-condition
keys (canonical pretty-printed SOIR expressions) to the truth value assigned
in the current code path.  Whenever a branch is about to happen on a
symbolic condition (via ``Sym.__bool__``), the finder is consulted:

* a *fresh* condition is assigned ``True`` and remembered;
* a *known* condition returns its assigned value (so re-evaluating the same
  condition within one run is consistent).

After a run completes, :meth:`advance` flips the deepest ``True`` decision
to ``False`` and discards everything below it — a depth-first traversal of
the branch tree that, for functions with finitely many code paths,
eventually enumerates them all.
"""

from __future__ import annotations


class LoopLimitExceeded(Exception):
    """The same condition was consulted too many times within one run —
    an unbounded loop over a symbolic condition (unsupported, paper §3.3)."""


class PathFinder:
    """Depth-first enumerator of branch decisions for one view function."""

    def __init__(self, *, loop_limit: int = 8, decision_budget: int = 256):
        #: condition key -> assigned truth value (persists across runs)
        self.decisions: dict[str, bool] = {}
        #: keys consulted during the current run, in first-consultation order
        self._run_order: list[str] = []
        #: per-run consultation counts, to detect symbolic loops
        self._run_counts: dict[str, int] = {}
        self.loop_limit = loop_limit
        #: total decisions allowed per run — catches loops whose condition
        #: *changes* every iteration (e.g. ``while x > 0: x = x - 1`` over a
        #: symbolic x builds a fresh condition per round and would escape
        #: the per-key limit)
        self.decision_budget = decision_budget
        self._run_total = 0
        self.runs = 0
        #: branch-hook invocations across all runs of this finder — every
        #: ``Sym.__bool__`` that reached :meth:`decide`.  Surfaced on the
        #: analyzer's trace spans (docs/OBSERVABILITY.md).
        self.total_decisions = 0

    def begin_run(self) -> None:
        self._run_order = []
        self._run_counts = {}
        self._run_total = 0
        self.runs += 1

    def decide(self, key: str) -> bool:
        """The truth value of the condition identified by ``key``."""
        self.total_decisions += 1
        self._run_total += 1
        if self._run_total > self.decision_budget:
            raise LoopLimitExceeded(
                f"decision budget ({self.decision_budget}) exhausted"
            )
        count = self._run_counts.get(key, 0) + 1
        self._run_counts[key] = count
        if count > self.loop_limit:
            raise LoopLimitExceeded(key)
        if key in self.decisions:
            value = self.decisions[key]
        else:
            self.decisions[key] = True
            value = True
        if key not in self._run_order:
            self._run_order.append(key)
        return value

    def trace(self) -> tuple[tuple[str, bool], ...]:
        """The branch decisions of the current run, in order."""
        return tuple((k, self.decisions[k]) for k in self._run_order)

    def advance(self) -> bool:
        """Prepare the next unexplored path.

        Returns ``False`` when the branch tree is exhausted.  Decisions
        recorded in previous runs but *not* consulted in the current run
        belong to abandoned subtrees and are dropped first.
        """
        self.decisions = {k: self.decisions[k] for k in self._run_order}
        while self._run_order:
            key = self._run_order[-1]
            if self.decisions[key]:
                self.decisions[key] = False
                return True
            self._run_order.pop()
            del self.decisions[key]
        return False
