"""The analysis session: shared state between the symbolic values, the
symbolic backend and the engine.

One :class:`AnalysisSession` lives for the duration of one view function's
analysis; it owns the path finder, the per-run recorder (arguments and
commands of the current code path) and the fresh-name counters.  It is
installed in a context variable so that ``Sym.__bool__`` — triggered from
arbitrary application code — can reach the path finder, exactly like the
debugger hook of paper Figure 5.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, field
from typing import Iterator

from ..soir import commands as C
from ..soir import expr as E
from ..soir.path import Argument
from ..soir.pretty import pp_expr
from ..soir.schema import Schema
from ..soir.types import SoirType
from .pathfinder import PathFinder


class ConservativeFallback(Exception):
    """The analyzer met semantics it cannot translate on this path.

    The engine records the path as *conservative*: the verifier will
    restrict it against every operation (paper §3.3)."""


class NoAnalysisSession(RuntimeError):
    """A symbolic value was used outside any analysis session."""


_active: contextvars.ContextVar["AnalysisSession | None"] = contextvars.ContextVar(
    "analysis_session", default=None
)


def current_session() -> "AnalysisSession":
    session = _active.get()
    if session is None:
        raise NoAnalysisSession(
            "symbolic value used outside an analysis session"
        )
    return session


def in_analysis() -> bool:
    return _active.get() is not None


@dataclass
class Recorder:
    """Arguments, conditions and effects of the *current* run (code path)."""

    args: dict[str, Argument] = field(default_factory=dict)
    commands: list[C.Command] = field(default_factory=list)

    def record(self, command: C.Command) -> None:
        self.commands.append(command)

    def add_arg(self, arg: Argument) -> None:
        existing = self.args.get(arg.name)
        if existing is None:
            self.args[arg.name] = arg
        elif existing.type != arg.type:
            raise ConservativeFallback(
                f"argument {arg.name!r} used at two types"
            )


class AnalysisSession:
    """Per-view analysis state."""

    def __init__(self, registry, schema: Schema):
        self.registry = registry
        self.schema = schema
        self.finder = PathFinder()
        self.recorder = Recorder()
        self._fresh_counter = 0
        self.notes: list[str] = []

    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def installed(self) -> Iterator["AnalysisSession"]:
        token = _active.set(self)
        try:
            yield self
        finally:
            _active.reset(token)

    def begin_run(self) -> None:
        self.finder.begin_run()
        self.recorder = Recorder()
        self._fresh_counter = 0

    # ------------------------------------------------------------------
    # Branching (the onBranch hook of paper Figure 5)
    # ------------------------------------------------------------------

    def decide(self, cond: E.Expr) -> bool:
        """Choose a branch for a symbolic condition, record the guard."""
        key = pp_expr(cond)
        value = self.finder.decide(key)
        guard_cond = cond if value else _negate(cond)
        self.recorder.record(C.Guard(guard_cond))
        return value

    # ------------------------------------------------------------------
    # Arguments
    # ------------------------------------------------------------------

    def declare_arg(
        self,
        name: str,
        type_: SoirType,
        *,
        source: str,
        unique_id: bool = False,
    ) -> E.Var:
        """Register a (possibly already known) path argument."""
        self.recorder.add_arg(Argument(name, type_, source, unique_id))
        return E.Var(name, type_)

    def fresh_arg(
        self, base: str, type_: SoirType, *, source: str = "fresh",
        unique_id: bool = False,
    ) -> E.Var:
        """Register a fresh argument with a unique, deterministic name.

        Fresh names are deterministic *per run* so the same program point
        yields the same name in every re-invocation — conditions collected
        in one run stay comparable across runs.
        """
        self._fresh_counter += 1
        name = f"{base}${self._fresh_counter}"
        return self.declare_arg(name, type_, source=source, unique_id=unique_id)

    # ------------------------------------------------------------------

    def record(self, command: C.Command) -> None:
        self.recorder.record(command)

    def note(self, message: str) -> None:
        if message not in self.notes:
            self.notes.append(message)


def _negate(cond: E.Expr) -> E.Expr:
    if isinstance(cond, E.Not):
        return cond.operand
    return E.Not(cond)
