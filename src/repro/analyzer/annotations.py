"""Annotations for third-party semantics (paper §6.3).

Third-party library calls are opaque to the analyzer; by default a path
that depends on one degrades to the conservative strategy.  The paper
"added a few annotations in OwnPhotos that override the default strategy"
— this module provides that mechanism:

* :func:`external` wraps a third-party callable.  Under concrete execution
  it simply calls through.  Under analysis it yields an *opaque value* of
  a declared SOIR type: an unconstrained input of the code path (the
  verifier treats it as an additional argument, quantified over its
  domain), which is sound whenever the callable is a pure function of its
  inputs and the replicated state is only affected through the value.

* :func:`consistency_irrelevant` marks a callable whose effects never
  reach the replicated database (logging, metrics, cache warming): under
  analysis the call is skipped entirely.
"""

from __future__ import annotations

import functools
import itertools
from typing import Callable

from ..soir.types import SoirType
from .context import current_session, in_analysis
from .symbolic import sym_of

_counter = itertools.count()


def external(tag: str, fn: Callable, result_type: SoirType):
    """Annotate a pure third-party callable.

    Returns a wrapper that behaves like ``fn`` concretely and like a fresh
    opaque value of ``result_type`` under analysis."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if not in_analysis():
            return fn(*args, **kwargs)
        session = current_session()
        name = f"ext_{tag}${next(_counter)}"
        var = session.declare_arg(name, result_type, source="opaque")
        session.note(f"external annotation {tag!r} produced opaque {name}")
        return sym_of(var, session.registry)

    return wrapper


def consistency_irrelevant(fn: Callable):
    """Annotate a callable whose side effects never touch replicated state."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if in_analysis():
            return None
        return fn(*args, **kwargs)

    return wrapper
