"""Symbolic values (the ``Sym`` class of paper Figure 6).

Operations on symbolic values are overridden so that computing with them
builds SOIR expressions instead of concrete results.  Concrete operands are
lifted to literals on contact.  ``__bool__`` — Python's shortcut for the
``onBranch`` debugger hook (paper §5.1) — forwards to the path finder, and
``bool_expr`` carries the object-existence condition used in place of the
default truthiness (paper §5.1, "Object existence").
"""

from __future__ import annotations

from typing import Any

from ..soir import expr as E
from ..soir.types import (
    BOOL,
    DATETIME,
    FLOAT,
    INT,
    STRING,
    Comparator,
    Direction,
    DRelation,
    ListType,
    ObjType,
    SoirType,
)
from .context import ConservativeFallback, current_session


class Sym:
    """Base class of all symbolic values."""

    __soir_symbolic__ = True

    def __init__(self, expr: E.Expr, bool_expr: E.Expr | None = None):
        self.expr = expr
        #: condition substituted for default truthiness in branches
        self.bool_expr = bool_expr

    @property
    def type(self) -> SoirType:
        return self.expr.type

    def __bool__(self) -> bool:
        cond = self.bool_expr if self.bool_expr is not None else self._truthiness()
        return current_session().decide(cond)

    def _truthiness(self) -> E.Expr:
        raise ConservativeFallback(
            f"truthiness of {type(self).__name__} is not defined"
        )

    def __hash__(self) -> int:  # identity: Syms never act as lookup keys
        return id(self)

    def __repr__(self) -> str:
        from ..soir.pretty import pp_expr

        return f"<{type(self).__name__} {pp_expr(self.expr)}>"


def lift(value: Any, type_hint: SoirType | None = None) -> E.Expr:
    """Lift a concrete or symbolic value to a SOIR expression."""
    if isinstance(value, Sym):
        return value.expr
    if isinstance(value, E.Expr):
        return value
    if value is None:
        return E.NoneLit(type_hint if type_hint is not None else STRING)
    if isinstance(value, bool):
        return E.Lit(value, BOOL)
    if isinstance(value, int):
        return E.Lit(value, type_hint if type_hint == DATETIME else INT)
    if isinstance(value, float):
        return E.Lit(value, FLOAT)
    if isinstance(value, str):
        return E.Lit(value, STRING)
    if isinstance(value, (list, tuple)):
        elems = tuple(value)
        elem_t = type_hint.elem if isinstance(type_hint, ListType) else STRING
        return E.Lit(elems, ListType(elem_t))
    raise ConservativeFallback(f"cannot lift value of type {type(value).__name__}")


def sym_of(expr: E.Expr, registry=None, bool_expr: E.Expr | None = None) -> Any:
    """Wrap a SOIR expression into the Sym subclass matching its type."""
    t = expr.type
    if t == BOOL:
        return SymBool(expr, bool_expr)
    if t == INT:
        return SymInt(expr, bool_expr)
    if t == FLOAT:
        return SymFloat(expr, bool_expr)
    if t == STRING:
        return SymStr(expr, bool_expr)
    if t == DATETIME:
        return SymDatetime(expr, bool_expr)
    if isinstance(t, ObjType):
        reg = registry if registry is not None else current_session().registry
        return SymObj(reg.get_model(t.model_name), expr, bool_expr)
    # References and other types stay as a plain Sym wrapper.
    return Sym(expr, bool_expr)


class _Comparable:
    """Mixin providing comparison operators that build SymBool."""

    def _cmp(self, op: Comparator, other: Any) -> "SymBool":
        return SymBool(E.Cmp(op, self.expr, lift(other, self.type)))

    def __eq__(self, other):  # type: ignore[override]
        return self._cmp(Comparator.EQ, other)

    def __ne__(self, other):  # type: ignore[override]
        return self._cmp(Comparator.NE, other)

    def __lt__(self, other):
        return self._cmp(Comparator.LT, other)

    def __le__(self, other):
        return self._cmp(Comparator.LE, other)

    def __gt__(self, other):
        return self._cmp(Comparator.GT, other)

    def __ge__(self, other):
        return self._cmp(Comparator.GE, other)

    __hash__ = Sym.__hash__


class SymBool(Sym, _Comparable):
    def _truthiness(self) -> E.Expr:
        return self.expr

    def logical_not(self) -> "SymBool":
        return SymBool(E.Not(self.expr))


class _Numeric(_Comparable):
    """Mixin providing arithmetic operators."""

    def _bin(self, op: str, other: Any, *, rev: bool = False):
        other_expr = lift(other, self.type)
        left, right = (other_expr, self.expr) if rev else (self.expr, other_expr)
        return sym_of(E.BinOp(op, left, right))

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, rev=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, rev=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, rev=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, rev=True)

    def __floordiv__(self, other):
        return self._bin("/", other)

    def __mod__(self, other):
        return self._bin("%", other)

    def __neg__(self):
        return sym_of(E.Neg(self.expr))


class SymInt(Sym, _Numeric):
    def _truthiness(self) -> E.Expr:
        return E.Cmp(Comparator.NE, self.expr, E.intlit(0))


class SymFloat(Sym, _Numeric):
    def _truthiness(self) -> E.Expr:
        return E.Cmp(Comparator.NE, self.expr, E.floatlit(0.0))


class SymDatetime(Sym, _Numeric):
    def _truthiness(self) -> E.Expr:
        return E.Cmp(Comparator.NE, self.expr, E.Lit(0, DATETIME))


class SymStr(Sym, _Comparable):
    def _truthiness(self) -> E.Expr:
        return E.Cmp(Comparator.NE, self.expr, E.strlit(""))

    def __add__(self, other):
        return SymStr(E.BinOp("concat", self.expr, lift(other, STRING)))

    def __radd__(self, other):
        return SymStr(E.BinOp("concat", lift(other, STRING), self.expr))

    def startswith(self, prefix) -> SymBool:
        return SymBool(E.Cmp(Comparator.STARTSWITH, self.expr, lift(prefix, STRING)))

    def __contains__(self, needle) -> bool:
        # Python coerces __contains__ results, so this is a branch point.
        cond = E.Cmp(Comparator.CONTAINS, self.expr, lift(needle, STRING))
        return current_session().decide(cond)

    def strip(self) -> "SymStr":
        # Normalisation is invisible to consistency semantics; keep as-is.
        return self

    def lower(self) -> "SymStr":
        raise ConservativeFallback("string case transformation is not modelled")


class SymObj(Sym):
    """A symbolic model object.

    Field reads build ``FieldGet`` expressions; relation accesses return
    symbolic related objects / the ordinary ORM related managers (which
    route back into the symbolic backend); field writes are buffered until
    ``save()``, mirroring Django instance semantics.
    """

    __soir_object__ = True  # participates in lookup parsing like a Model

    def __init__(self, model_cls: type, expr: E.Expr, bool_expr: E.Expr | None = None):
        super().__init__(expr, bool_expr)
        object.__setattr__(self, "_initialized", False)
        self.model_cls = model_cls
        self._meta = model_cls._meta
        self._registry = model_cls._registry
        self._pending: dict[str, Any] = {}
        self._initialized = True

    def _truthiness(self) -> E.Expr:
        # ``if obj:`` on an existing object is vacuously true in Django;
        # bool_expr (existence) is what careful analysis substitutes.
        return E.true()

    # -- reads ---------------------------------------------------------

    @property
    def pk(self):
        return self._field_sym(self._meta.pk.name)

    def _field_sym(self, name: str):
        if name in self._pending:
            value = self._pending[name]
            return value
        schema = current_session().schema
        ftype = schema.model(self.model_cls.__name__).field(name).type
        return sym_of(E.FieldGet(self.expr, name, ftype))

    def __getattr__(self, name: str):
        if name.startswith("_") or not getattr(self, "_initialized", False):
            raise AttributeError(name)
        meta = self._meta
        if any(f.name == name for f in meta.columns):
            return self._field_sym(name)
        for rel in meta.relations:
            if rel.name == name and rel.kind == "fk":
                return self._follow_fk(rel)
            if rel.name == name and rel.kind == "m2m":
                from ..orm.query import M2MManager

                return M2MManager(self, rel)
        if name.endswith("_id"):
            base = name[:-3]
            for rel in meta.fk_relations():
                if rel.name == base:
                    related = self._follow_fk(rel)
                    return related.pk
        reverse = meta.reverse_relations.get(name)
        if reverse is not None:
            from ..orm.query import RelatedManager, ReverseM2MManager

            if reverse.kind == "m2m":
                return ReverseM2MManager(self, reverse)
            return RelatedManager(self, reverse)
        raise AttributeError(f"{self.model_cls.__name__} has no attribute {name!r}")

    def _follow_fk(self, rel) -> "SymObj":
        hop = DRelation(rel.relation_name(), Direction.FORWARD)
        target_name = rel.target_name()
        followed = E.Follow(E.Singleton(self.expr), (hop,), target_name)
        target_cls = self._registry.get_model(target_name)
        return SymObj(
            target_cls,
            E.AnyOf(followed),
            bool_expr=E.Not(E.IsEmpty(followed)),
        )

    # -- writes --------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_") or not getattr(self, "_initialized", False):
            object.__setattr__(self, name, value)
            return
        if name in ("expr", "bool_expr", "model_cls"):
            object.__setattr__(self, name, value)
            return
        meta = self._meta
        if any(f.name == name for f in meta.columns):
            self._pending[name] = value
            return
        if any(r.name == name for r in meta.relations):
            self._pending[name] = value
            return
        if name.endswith("_id") and any(r.name == name[:-3] for r in meta.fk_relations()):
            self._pending[name[:-3] + "@id"] = value
            return
        object.__setattr__(self, name, value)

    def save(self) -> None:
        from ..orm import runtime

        runtime.backend().save_instance(self)

    def delete(self) -> None:
        from ..orm import runtime

        runtime.backend().delete_instance(self)

    def refresh_from_db(self) -> None:
        self._pending.clear()

    def __eq__(self, other):
        # Django compares model instances by primary key.
        if isinstance(other, SymObj):
            return SymBool(
                E.Cmp(Comparator.EQ, E.RefOf(self.expr), E.RefOf(other.expr))
            )
        if isinstance(other, Sym):
            return SymBool(E.Cmp(Comparator.EQ, E.RefOf(self.expr), other.expr))
        return NotImplemented

    def __ne__(self, other):
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return NotImplemented
        return eq.logical_not()

    __hash__ = Sym.__hash__

    def __repr__(self) -> str:
        from ..soir.pretty import pp_expr

        return f"<SymObj {self.model_cls.__name__} {pp_expr(self.expr)}>"
