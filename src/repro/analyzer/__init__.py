"""The Noctua ANALYZER: embedded, debugger-based, framework-integrated.

Runs unmodified view functions inside the live interpreter with a symbolic
request and a symbolic database backend, steering branch decisions through
``__bool__`` interception to enumerate all code paths, and emitting SOIR
for each (paper §4.1, §5.1).
"""

from .context import AnalysisSession, ConservativeFallback
from .dbproxy import SymbolicBackend
from .engine import analyze_application, analyze_view
from .pathfinder import LoopLimitExceeded, PathFinder
from .request import SymbolicRequest
from .symbolic import (
    Sym,
    SymBool,
    SymDatetime,
    SymFloat,
    SymInt,
    SymObj,
    SymStr,
    lift,
    sym_of,
)

__all__ = [
    "AnalysisSession",
    "ConservativeFallback",
    "LoopLimitExceeded",
    "PathFinder",
    "Sym",
    "SymBool",
    "SymDatetime",
    "SymFloat",
    "SymInt",
    "SymObj",
    "SymStr",
    "SymbolicBackend",
    "SymbolicRequest",
    "analyze_application",
    "analyze_view",
    "lift",
    "sym_of",
]
