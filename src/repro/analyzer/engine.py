"""The analysis engine: ``AnalyzeApp`` / ``AnalyzeFunc`` of paper Figure 5.

For every HTTP endpoint of an initialized application, the engine
repeatedly invokes the (possibly runtime-constructed) view function with a
symbolic request and symbolic URL arguments, under the symbolic database
backend.  The path finder steers each invocation down a different branch
assignment until the whole branch tree is explored; each run yields one
:class:`~repro.soir.path.CodePath`.

Exception discipline:

* *application* exceptions (``Http404``, ``DoesNotExist``, missing request
  parameters, integrity/validation errors, explicit ``raise``) mark the
  path **aborted** — its effects roll back and never replicate;
* *analysis* limitations (query-set iteration, unbounded symbolic loops,
  unliftable values) mark the path **conservative** — the verifier will
  restrict it against everything (paper §3.3);
* any other exception is treated as an analyzer gap and also degrades to
  conservative, preserving soundness.
"""

from __future__ import annotations

import time

from ..obs import tracer as obs
from ..orm import runtime
from ..orm.exceptions import (
    IntegrityError,
    MultipleObjectsReturned,
    ObjectDoesNotExist,
    ValidationError,
)
from ..soir.path import AnalysisResult, CodePath
from ..soir.types import INT, STRING
from ..soir.validate import ValidationError as SoirValidationError, validate_path
from ..web.app import Application
from ..web.http import BadRequest, Http404
from ..web.urls import URLPattern
from .context import AnalysisSession, ConservativeFallback
from .dbproxy import SymbolicBackend
from .pathfinder import LoopLimitExceeded
from .request import SymbolicRequest
from .symbolic import sym_of

#: exceptions that mean "this request fails and rolls back"
ABORT_EXCEPTIONS = (
    Http404,
    BadRequest,
    ObjectDoesNotExist,
    MultipleObjectsReturned,
    IntegrityError,
    ValidationError,
    KeyError,
    ValueError,
    RuntimeError,
)

#: exceptions that mean "the analyzer cannot translate this path"
CONSERVATIVE_EXCEPTIONS = (ConservativeFallback, LoopLimitExceeded)


def analyze_view(
    pattern: URLPattern,
    registry,
    schema,
    *,
    max_paths: int = 256,
) -> tuple[list[CodePath], list[str]]:
    """Discover and translate every code path of one view function."""
    session = AnalysisSession(registry, schema)
    view_name = pattern.view_name
    paths: list[CodePath] = []
    index = 0
    with obs.span(view_name, "endpoint") as endpoint_span:
        while True:
            decisions_before = session.finder.total_decisions
            with obs.span(f"{view_name}[{index}]",
                          "path-finding") as run_span:
                session.begin_run()
                request = SymbolicRequest(session)
                url_args = {}
                for name, pytype in pattern.param_specs():
                    soir_type = INT if pytype is int else STRING
                    var = session.declare_arg(
                        f"arg_url_{name}", soir_type, source="url"
                    )
                    url_args[name] = sym_of(var, registry)

                aborted = False
                conservative = False
                exhausted = False
                reason = ""
                with session.installed(), \
                        runtime.use_backend(SymbolicBackend(session)):
                    try:
                        pattern.view(request, **url_args)
                    except LoopLimitExceeded as exc:
                        # An unbounded symbolic loop: its branch tree is
                        # hopeless to enumerate, so stop exploring this view
                        # after recording the conservative path (which
                        # restricts it against everything).
                        conservative = True
                        exhausted = True
                        reason = str(exc)
                    except CONSERVATIVE_EXCEPTIONS as exc:
                        conservative = True
                        reason = str(exc)
                    except ABORT_EXCEPTIONS as exc:
                        aborted = True
                        reason = f"{type(exc).__name__}: {exc}"
                    except Exception as exc:  # analyzer gap: stay sound
                        conservative = True
                        reason = f"analyzer gap: {type(exc).__name__}: {exc}"
                        session.note(
                            f"{view_name}: conservative fallback ({reason})"
                        )

                path = CodePath(
                    name=f"{view_name}[{index}]",
                    args=tuple(session.recorder.args.values()),
                    commands=tuple(session.recorder.commands),
                    view=view_name,
                    branch_trace=session.finder.trace(),
                    aborted=aborted,
                    conservative=conservative,
                    abort_reason=reason,
                )
                run_span.set(
                    branch_decisions=(session.finder.total_decisions
                                      - decisions_before),
                    commands=len(path.commands),
                    aborted=aborted,
                    conservative=conservative,
                )
            paths.append(path)
            index += 1
            if exhausted:
                session.note(
                    f"{view_name}: unbounded symbolic loop; "
                    f"exploration stopped"
                )
                break
            if index >= max_paths:
                session.note(
                    f"{view_name}: path budget ({max_paths}) exhausted"
                )
                break
            if not session.finder.advance():
                break
        endpoint_span.set(
            paths=len(paths),
            effectful=sum(1 for p in paths if p.is_effectful()),
            branch_decisions=session.finder.total_decisions,
        )
    return paths, session.notes


def analyze_application(
    app: Application, *, max_paths_per_view: int = 256
) -> AnalysisResult:
    """Analyze every endpoint of an initialized application.

    The application must already be constructed (models registered, routes
    mounted) — endpoint discovery queries the live framework state, never
    the source text (paper §5.1).
    """
    with obs.span(app.name, "app-analysis", app=app.name) as app_span:
        static_start = time.perf_counter()
        with obs.span("schema", "soir-lowering",
                      models=len(app.registry.models)):
            schema = app.registry.to_soir_schema()
        static_time = time.perf_counter() - static_start

        result = AnalysisResult(app.name, schema)
        result.timings["static_ms"] = static_time * 1e3
        start = time.perf_counter()
        for pattern in app.endpoints():
            paths, notes = analyze_view(
                pattern, app.registry, schema, max_paths=max_paths_per_view
            )
            for path in paths:
                if not path.conservative:
                    try:
                        validate_path(path, schema)
                    except SoirValidationError as exc:
                        # An ill-formed path is an analyzer bug; degrade to
                        # the conservative strategy rather than mis-verify.
                        path = CodePath(
                            name=path.name,
                            args=path.args,
                            commands=(),
                            view=path.view,
                            branch_trace=path.branch_trace,
                            aborted=path.aborted,
                            conservative=True,
                            abort_reason=f"ill-formed SOIR: {exc}",
                        )
                        result.notes.append(
                            f"{path.name}: ill-formed SOIR: {exc}"
                        )
                result.paths.append(path)
            result.notes.extend(notes)
        result.timings["analysis"] = time.perf_counter() - start
        app_span.set(
            code_paths=len(result.paths),
            effectful=len(result.effectful_paths),
            endpoints=len(list(app.endpoints())),
        )
    return result
