"""The symbolic execution backend.

Installed in place of the concrete backend while a view function runs under
analysis.  Effectful query-set and object methods "do not make actual
database calls, but instead notify the path finder about the events"
(paper §4.1): reads return symbolic values carrying SOIR expressions,
writes are recorded as SOIR commands, and implicit framework preconditions
(existence for ``get``, uniqueness for inserts, field refinements such as
``PositiveIntegerField``) are recorded as guards.
"""

from __future__ import annotations

from typing import Any

from ..orm.database import qs_to_soir
from ..orm.exceptions import IntegrityError
from ..orm.fields import AutoField
from ..orm.query import QuerySet
from ..soir import commands as C
from ..soir import expr as E
from ..soir.schema import FieldSchema
from ..soir.types import (
    FLOAT,
    INT,
    Aggregation,
    Comparator,
    ListType,
)
from .context import AnalysisSession, ConservativeFallback
from .symbolic import Sym, SymBool, SymInt, SymObj, lift, sym_of


class SymbolicBackend:
    """Backend recording SOIR instead of touching a database."""

    def __init__(self, session: AnalysisSession):
        self.session = session

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _compile(self, qs: QuerySet) -> E.Expr:
        return qs_to_soir(qs, self.session.schema)

    def _obj_expr(self, value: Any) -> E.Expr:
        from ..orm.models import Model

        if isinstance(value, SymObj):
            return value.expr
        if isinstance(value, Model):
            if value.pk is None:
                raise ConservativeFallback(
                    "relation operation on an unsaved concrete instance"
                )
            return E.Deref(lift(value.pk), type(value).__name__)
        raise ConservativeFallback(
            f"cannot use {type(value).__name__} as a related object"
        )

    def _refinement_guards(self, fschema: FieldSchema, expr: E.Expr) -> None:
        """Field refinements become preconditions for symbolic values
        (concrete values are validated eagerly by the ORM)."""
        if isinstance(expr, (E.Lit, E.NoneLit)):
            return
        if fschema.min_value is not None:
            self.session.record(
                C.Guard(E.Cmp(Comparator.GE, expr, E.intlit(fschema.min_value)))
            )
        if fschema.choices is not None:
            self.session.record(
                C.Guard(
                    E.Cmp(
                        Comparator.IN,
                        expr,
                        E.Lit(tuple(fschema.choices), ListType(fschema.type)),
                    )
                )
            )

    def _unique_guards(
        self, model_name: str, field_values: dict[str, E.Expr]
    ) -> None:
        """Uniqueness preconditions of a merge (paper §6.4: the
        FollowQuestion 'unique together' case arises from these)."""
        mschema = self.session.schema.model(model_name)
        for fschema in mschema.fields:
            if not fschema.unique or fschema.name == mschema.pk:
                continue
            value = field_values.get(fschema.name)
            if value is None or isinstance(value, E.NoneLit):
                continue
            clash = E.Filter(
                E.All(model_name), (), fschema.name, Comparator.EQ, value
            )
            self.session.record(C.Guard(E.IsEmpty(clash)))
        for group in mschema.unique_together:
            clash_expr: E.Expr = E.All(model_name)
            complete = True
            for fname in group:
                value = field_values.get(fname)
                if value is None:
                    complete = False
                    break
                clash_expr = E.Filter(clash_expr, (), fname, Comparator.EQ, value)
            if complete:
                self.session.record(C.Guard(E.IsEmpty(clash_expr)))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def fetch(self, qs: QuerySet):
        raise ConservativeFallback(
            "iteration over a query set is unbounded; use query-set level "
            "batch operations instead (paper §3.3)"
        )

    def fetch_by_pk(self, model: type, pk: Any) -> SymObj:
        ref = lift(pk)
        return SymObj(
            model,
            E.Deref(ref, model.__name__),
            bool_expr=E.Exists(model.__name__, ref),
        )

    def get(self, qs: QuerySet):
        """A branch on existence: the true side continues with the object,
        the false side raises ``DoesNotExist`` (catchable by the app)."""
        mschema = self.session.schema.model(qs.model.__name__)
        pk_only = (
            len(qs.lookups) == 1
            and not qs.lookups[0].relpath
            and qs.lookups[0].field == mschema.pk
            and qs.lookups[0].op == Comparator.EQ
        )
        if pk_only:
            ref = _lookup_value_expr(qs, self.session.schema)
            exists = E.Exists(qs.model.__name__, ref)
            obj_expr: E.Expr = E.Deref(ref, qs.model.__name__)
        else:
            expr = self._compile(qs)
            exists = E.Not(E.IsEmpty(expr))
            obj_expr = E.AnyOf(expr)
        if self.session.decide(exists):
            return SymObj(qs.model, obj_expr)
        raise qs.model.DoesNotExist(f"{qs.model.__name__} (symbolic)")

    def first(self, qs: QuerySet) -> SymObj:
        expr = self._compile(qs)
        return SymObj(
            qs.model, E.FirstOf(expr), bool_expr=E.Not(E.IsEmpty(expr))
        )

    def last(self, qs: QuerySet) -> SymObj:
        expr = self._compile(qs)
        return SymObj(qs.model, E.LastOf(expr), bool_expr=E.Not(E.IsEmpty(expr)))

    def exists(self, qs: QuerySet) -> SymBool:
        return SymBool(E.Not(E.IsEmpty(self._compile(qs))))

    def count(self, qs: QuerySet) -> SymInt:
        mschema = self.session.schema.model(qs.model.__name__)
        return SymInt(
            E.Aggregate(self._compile(qs), Aggregation.CNT, mschema.pk, INT)
        )

    def aggregate(self, qs: QuerySet, agg: str, field_name: str):
        mschema = self.session.schema.model(qs.model.__name__)
        kinds = {
            "sum": Aggregation.SUM,
            "avg": Aggregation.AVG,
            "max": Aggregation.MAX,
            "min": Aggregation.MIN,
        }
        result_type = (
            FLOAT if agg == "avg" else mschema.field(field_name).type
        )
        return sym_of(
            E.Aggregate(self._compile(qs), kinds[agg], field_name, result_type)
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def create(self, model: type, kwargs: dict) -> SymObj:
        return self._insert(model, dict(kwargs))

    def _insert(self, model: type, kwargs: dict) -> SymObj:
        """Insert = merge of a fresh object + non-existence guard, with the
        fresh primary key as a globally-unique argument (paper §3.1.3,
        §5.2 unique-ID optimisation)."""
        meta = model._meta
        mschema = self.session.schema.model(model.__name__)
        fields: dict[str, E.Expr] = {}
        for f in meta.columns:
            fschema = mschema.field(f.name)
            if f.name in kwargs:
                value = kwargs.pop(f.name)
                if not isinstance(value, (Sym, E.Expr)):
                    f.validate(value)  # concrete values validated eagerly
                expr = lift(value, fschema.type)
                self._refinement_guards(fschema, expr)
            elif f is meta.pk and isinstance(f, AutoField):
                expr = self.session.fresh_arg(
                    f"new_{model.__name__}_id", fschema.type,
                    source="fresh", unique_id=True,
                )
            elif f.has_default():
                if callable(f.default):
                    # Computed at the originating site, replicated by value.
                    expr = self.session.fresh_arg(
                        f"default_{model.__name__}_{f.name}", fschema.type,
                        source="fresh",
                    )
                else:
                    expr = lift(f.default, fschema.type)
            elif f.null or f is meta.pk:
                expr = E.NoneLit(fschema.type)
            else:
                raise IntegrityError(
                    f"{model.__name__}.{f.name}: no value and no default"
                )
            fields[f.name] = expr

        # Preconditions: fresh pk does not exist; unique fields are free.
        self.session.record(
            C.Guard(E.Not(E.Exists(model.__name__, fields[meta.pk.name])))
        )
        self._unique_guards(model.__name__, fields)

        make = E.MakeObj(model.__name__, tuple(fields.items()))
        self.session.record(C.Update(E.Singleton(make)))

        for rel in meta.relations:
            value = kwargs.pop(rel.name, None)
            id_value = kwargs.pop(f"{rel.name}_id", None)
            if value is None and id_value is not None:
                target = rel.target_name()
                ref = lift(id_value)
                self.session.record(C.Guard(E.Exists(target, ref)))
                self.session.record(
                    C.Link(rel.relation_name(), make, E.Deref(ref, target))
                )
            elif value is not None:
                self.session.record(
                    C.Link(rel.relation_name(), make, self._obj_expr(value))
                )
            elif rel.kind == "fk" and not rel.null:
                raise IntegrityError(
                    f"{model.__name__}.{rel.name}: NULL foreign key"
                )
        if kwargs:
            raise ConservativeFallback(
                f"create(): unhandled fields {sorted(kwargs)}"
            )
        return SymObj(model, make)

    def save_instance(self, instance) -> None:
        from ..orm.models import Model

        if isinstance(instance, SymObj):
            self._save_symbolic(instance)
            return
        if isinstance(instance, Model):
            # An app-constructed concrete instance saved under analysis:
            # treat as an insert with its current field values.
            kwargs: dict[str, Any] = {}
            for f in type(instance)._meta.columns:
                value = instance._data.get(f.name)
                if value is not None:
                    kwargs[f.name] = value
            for rel in type(instance)._meta.fk_relations():
                target_pk = instance._data.get(f"{rel.name}_id")
                if target_pk is not None:
                    kwargs[f"{rel.name}_id"] = target_pk
            sym = self._insert(type(instance), kwargs)
            instance._data[type(instance)._meta.pk.name] = sym.pk
            instance._saved = True
            return
        raise ConservativeFallback(
            f"cannot save {type(instance).__name__} symbolically"
        )

    def _save_symbolic(self, obj: SymObj) -> None:
        meta = obj.model_cls._meta
        mschema = self.session.schema.model(obj.model_cls.__name__)
        chained: E.Expr = obj.expr
        changed_values: dict[str, E.Expr] = {}
        relation_ops: list[tuple[Any, Any]] = []
        for name, value in obj._pending.items():
            if name.endswith("@id"):
                relation_ops.append((meta.relation(name[:-3]), ("id", value)))
            elif any(r.name == name for r in meta.relations):
                relation_ops.append((meta.relation(name), ("obj", value)))
            else:
                fschema = mschema.field(name)
                expr = lift(value, fschema.type)
                self._refinement_guards(fschema, expr)
                changed_values[name] = expr
                chained = E.SetField(name, expr, chained)
        if changed_values:
            # Changed unique fields must not collide (over-approximation:
            # the object itself holding the value already is ignored).
            self._unique_guards(obj.model_cls.__name__, changed_values)
            self.session.record(C.Update(E.Singleton(chained)))
        for rel, (kind, value) in relation_ops:
            if value is None:
                self.session.record(
                    C.ClearLinks(rel.relation_name(), obj.expr, "source")
                )
            elif kind == "id":
                target = rel.target_name()
                ref = lift(value)
                self.session.record(C.Guard(E.Exists(target, ref)))
                self.session.record(
                    C.Link(rel.relation_name(), obj.expr, E.Deref(ref, target))
                )
            else:
                self.session.record(
                    C.Link(rel.relation_name(), obj.expr, self._obj_expr(value))
                )
        obj._pending.clear()

    def delete_instance(self, instance) -> None:
        self.session.record(C.Delete(E.Singleton(self._obj_expr(instance))))

    def update_qs(self, qs: QuerySet, kwargs: dict) -> None:
        meta = qs.model._meta
        mschema = self.session.schema.model(qs.model.__name__)
        expr = self._compile(qs)
        chained = expr
        any_column = False
        for key, value in kwargs.items():
            if any(f.name == key for f in meta.columns):
                fschema = mschema.field(key)
                vexpr = lift(value, fschema.type)
                self._refinement_guards(fschema, vexpr)
                chained = E.MapSet(chained, key, vexpr)
                any_column = True
            elif any(r.name == key for r in meta.fk_relations()):
                if value is None:
                    raise ConservativeFallback(
                        "bulk foreign-key set-to-NULL is not expressible"
                    )
                self.session.record(
                    C.RLink(
                        meta.relation(key).relation_name(),
                        expr,
                        self._obj_expr(value),
                    )
                )
            else:
                raise ConservativeFallback(f"update(): unknown field {key!r}")
        if any_column:
            self.session.record(C.Update(chained))

    def delete_qs(self, qs: QuerySet) -> None:
        self.session.record(C.Delete(self._compile(qs)))

    # ------------------------------------------------------------------
    # Relation commands
    # ------------------------------------------------------------------

    def link(self, rel, src, dst) -> None:
        self.session.record(
            C.Link(rel.relation_name(), self._obj_expr(src), self._obj_expr(dst))
        )

    def delink(self, rel, src, dst) -> None:
        self.session.record(
            C.Delink(rel.relation_name(), self._obj_expr(src), self._obj_expr(dst))
        )

    def clearlinks(self, rel, instance, end: str) -> None:
        self.session.record(
            C.ClearLinks(rel.relation_name(), self._obj_expr(instance), end)
        )


def _lookup_value_expr(qs: QuerySet, schema) -> E.Expr:
    """The literal/symbolic value expression of a single-lookup query."""
    from ..orm.database import _value_expr

    return _value_expr(qs.lookups[0], qs, schema)
