"""The symbolic HTTP request.

Arguments of a code path are *discovered*, not declared (paper §4.1):
whenever the view accesses a request parameter, the access is recorded as a
path argument (``arg_POST_action``) and a symbolic value is returned.
Presence checks (``"x" in request.POST``, ``request.POST.get``) branch on a
fresh boolean argument describing the request's shape.
"""

from __future__ import annotations

from typing import Any

from ..soir.types import BOOL, INT, STRING
from .context import AnalysisSession
from .symbolic import SymInt, SymStr, sym_of


class SymbolicParams:
    """Stands in for ``request.POST`` / ``request.GET``."""

    def __init__(self, session: AnalysisSession, kind: str):
        self._session = session
        self._kind = kind  # "POST" or "GET"

    def _arg(self, key: str, type_=STRING):
        name = f"arg_{self._kind}_{key}"
        var = self._session.declare_arg(name, type_, source=self._kind.lower())
        return sym_of(var, self._session.registry)

    def __getitem__(self, key: str):
        return self._arg(key)

    def int(self, key: str) -> SymInt:
        return self._arg(key, INT)

    def __contains__(self, key: str) -> bool:
        # Branch on the request's shape: a fresh boolean argument.
        name = f"has_{self._kind}_{key}"
        var = self._session.declare_arg(name, BOOL, source=self._kind.lower())
        return self._session.decide(var)

    def get(self, key: str, default: Any = None):
        if key in self:  # symbolic presence branch
            return self._arg(key)
        return default

    def keys(self):
        raise NotImplementedError(
            "enumerating symbolic request parameters is not supported"
        )


class SymbolicRequest:
    """The symbolic stand-in for :class:`repro.web.http.HttpRequest`.

    ``method`` is a symbolic string, so views that branch on the HTTP
    method fan out into one code path per method comparison outcome.
    """

    def __init__(self, session: AnalysisSession):
        self._session = session
        self.POST = SymbolicParams(session, "POST")
        self.GET = SymbolicParams(session, "GET")
        self.user = None
        self.path = "<symbolic>"

    @property
    def method(self) -> SymStr:
        var = self._session.declare_arg("arg_method", STRING, source="request")
        return SymStr(var)

    def post_int(self, key: str) -> SymInt:
        return self.POST.int(key)

    def get_int(self, key: str) -> SymInt:
        return self.GET.int(key)

    def __repr__(self) -> str:
        return "<SymbolicRequest>"
