"""SOIR type system.

SOIR (SMT-verifiable Object Intermediate Representation) is a simply-typed
imperative language modelling the database interactions of one code path of a
web application (paper, Section 3).  Its types mirror SQL data types plus the
three ORM abstractions: objects ``Obj<mu>``, query sets ``Set<mu>`` and
references ``Ref<mu>``.

All type objects are immutable and compare structurally, so they can be used
as dictionary keys and in sets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SoirType:
    """Base class of all SOIR types."""

    def is_model_type(self) -> bool:
        """Whether this type refers to a model (``Obj``/``Set``/``Ref``)."""
        return False

    @property
    def model(self) -> str:
        raise TypeError(f"{self!r} is not a model type")


@dataclass(frozen=True)
class BoolType(SoirType):
    def __str__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class IntType(SoirType):
    def __str__(self) -> str:
        return "Int"


@dataclass(frozen=True)
class FloatType(SoirType):
    def __str__(self) -> str:
        return "Float"


@dataclass(frozen=True)
class StringType(SoirType):
    def __str__(self) -> str:
        return "String"


@dataclass(frozen=True)
class DatetimeType(SoirType):
    """Timestamps.  Encoded as integers by the verifier."""

    def __str__(self) -> str:
        return "Datetime"


@dataclass(frozen=True)
class ListType(SoirType):
    """A list of homogeneous values (used for static parameters)."""

    elem: SoirType

    def __str__(self) -> str:
        return f"List<{self.elem}>"


@dataclass(frozen=True)
class ObjType(SoirType):
    """An instance of model ``model_name`` — a record of fields."""

    model_name: str

    def is_model_type(self) -> bool:
        return True

    @property
    def model(self) -> str:
        return self.model_name

    def __str__(self) -> str:
        return f"Obj<{self.model_name}>"


@dataclass(frozen=True)
class SetType(SoirType):
    """A query set: an ordered set of homogeneous ``model_name`` objects."""

    model_name: str

    def is_model_type(self) -> bool:
        return True

    @property
    def model(self) -> str:
        return self.model_name

    def __str__(self) -> str:
        return f"Set<{self.model_name}>"


@dataclass(frozen=True)
class RefType(SoirType):
    """The primary-key (ID) type for ``model_name`` objects."""

    model_name: str

    def is_model_type(self) -> bool:
        return True

    @property
    def model(self) -> str:
        return self.model_name

    def __str__(self) -> str:
        return f"Ref<{self.model_name}>"


# Canonical singletons for the scalar types.  Using shared instances keeps
# construction cheap; structural equality still holds for fresh instances.
BOOL = BoolType()
INT = IntType()
FLOAT = FloatType()
STRING = StringType()
DATETIME = DatetimeType()


def obj(model_name: str) -> ObjType:
    return ObjType(model_name)


def qset(model_name: str) -> SetType:
    return SetType(model_name)


def ref(model_name: str) -> RefType:
    return RefType(model_name)


class Comparator(enum.Enum):
    """Comparison operators usable in ``filter`` criteria and guards."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "contains"  # substring match, mirrors Django's __contains
    STARTSWITH = "startswith"
    IN = "in"  # membership in a literal list
    ISNULL = "isnull"  # value (a Bool literal) selects null / non-null;
    # over a relation path, "null" means no associated object exists

    def __str__(self) -> str:
        return self.value


class Direction(enum.Enum):
    """Which way a relation is traversed by ``follow``/``filter``."""

    FORWARD = "+"
    BACKWARD = "-"

    def __str__(self) -> str:
        return self.value


class Order(enum.Enum):
    ASC = "asc"
    DESC = "desc"

    def __str__(self) -> str:
        return self.value


class Aggregation(enum.Enum):
    MAX = "max"
    MIN = "min"
    SUM = "sum"
    CNT = "cnt"
    AVG = "avg"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DRelation:
    """A relation name plus a traversal direction (paper, Table 1)."""

    relation: str
    direction: Direction = Direction.FORWARD

    def __str__(self) -> str:
        return f"{self.relation}{self.direction}"


def scalar_types() -> tuple[SoirType, ...]:
    """The scalar (non-model, non-list) SOIR types."""
    return (BOOL, INT, FLOAT, STRING, DATETIME)
