"""Code paths: the unit of analysis and verification.

The analysis result of an application is a set of code paths encoded in
SOIR.  Each code path consists of (1) arguments, (2) path conditions and
(3) commands (paper §3.1).  We interleave guards with effectful commands in
a single command list, preserving program order; the path conditions are
exactly the guard conditions, each interpreted at its program point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .commands import Command, Guard
from .expr import Expr, Var
from .schema import Schema
from .types import SoirType


@dataclass(frozen=True)
class Argument:
    """One argument of a code path.

    ``source`` records where the analyzer discovered the argument:
    ``"url"`` (URL pattern parameter), ``"post"``/``"get"`` (request data),
    ``"fresh"`` (a storage-assigned fresh ID for an inserted object) or
    ``"opaque"`` (an unanalyzable external value).

    ``unique_id`` marks arguments that the geo-replicated storage
    guarantees to be globally unique; the verifier's unique-ID optimisation
    asserts ``distinct`` over them (paper §5.2).
    """

    name: str
    type: SoirType
    source: str = "post"
    unique_id: bool = False

    def var(self) -> Var:
        return Var(self.name, self.type)


@dataclass(frozen=True)
class CodePath:
    """One effectful (or read-only) code path of one view function."""

    name: str
    args: tuple[Argument, ...]
    commands: tuple[Command, ...]
    view: str = ""
    #: truth assignment of branch decisions that selects this path, for
    #: provenance / debugging (e.g. ``(("action == 'delete'", True),)``).
    branch_trace: tuple[tuple[str, bool], ...] = ()
    #: the path terminated in an exception: its effects are rolled back and
    #: never replicate, so it is never effectful.
    aborted: bool = False
    #: the analyzer met unsupported semantics on this path and fell back to
    #: the conservative strategy: the verifier restricts it against every
    #: operation, including itself (paper §3.3).
    conservative: bool = False
    abort_reason: str = ""

    @property
    def conditions(self) -> tuple[Expr, ...]:
        """The path conditions: every guard's condition, in program order."""
        return tuple(c.cond for c in self.commands if isinstance(c, Guard))

    @property
    def effects(self) -> tuple[Command, ...]:
        """The effectful commands (everything except guards)."""
        return tuple(c for c in self.commands if not isinstance(c, Guard))

    def is_effectful(self) -> bool:
        """Whether this path updates system state (paper §4.1)."""
        if self.aborted:
            return False
        if self.conservative:
            return True
        return any(c.is_effectful() for c in self.commands)

    def arg(self, name: str) -> Argument:
        for a in self.args:
            if a.name == name:
                return a
        raise KeyError(name)

    def models_touched(self, schema: Schema) -> frozenset[str]:
        """Every model this path reads or writes, including models reached
        through relation hops and referential actions — the *footprint* used
        by the verifier's fast disjointness layer."""
        out: set[str] = set()
        for cmd in self.commands:
            for node in cmd.walk_exprs():
                t = node.type
                if t.is_model_type():
                    out.add(t.model)
        for rname in self.relations_touched(schema):
            r = schema.relation(rname)
            out.add(r.source)
            out.add(r.target)
        return frozenset(out)

    def relations_touched(self, schema: Schema) -> frozenset[str]:
        """Every relation this path reads or writes."""
        rels: set[str] = set()
        for cmd in self.commands:
            rel = getattr(cmd, "relation", None)
            if rel is not None:
                rels.add(rel)
            for node in cmd.walk_exprs():
                relpath = getattr(node, "relpath", None)
                if relpath:
                    for hop in relpath:
                        rels.add(hop.relation)
        # Deletes implicitly touch every relation incident to the deleted
        # model — target-side through referential actions, source-side
        # because the deleted rows' own associations are removed —
        # transitively through cascades.
        deleted = self._deleted_models(schema)
        frontier = set(deleted)
        seen: set[str] = set(deleted)
        while frontier:
            m = frontier.pop()
            for r in schema.relations_of(m):
                rels.add(r.name)
                if (
                    r.target == m
                    and r.on_delete == "cascade"
                    and r.source not in seen
                ):
                    seen.add(r.source)
                    frontier.add(r.source)
        return frozenset(rels)

    def _deleted_models(self, schema: Schema) -> set[str]:
        from .commands import Delete

        out: set[str] = set()
        for cmd in self.commands:
            if isinstance(cmd, Delete):
                t = cmd.qs.type
                if t.is_model_type():
                    out.add(t.model)
        return out

    def uses_order(self) -> bool:
        """Whether any order-related primitive occurs in this path.

        Drives the lazy materialisation of the ``order`` component in the
        verifier's decoupled encoding (paper §4.2)."""
        from .expr import FirstOf, LastOf, OrderBy, ReverseSet

        for cmd in self.commands:
            for node in cmd.walk_exprs():
                if isinstance(node, (OrderBy, ReverseSet, FirstOf, LastOf)):
                    return True
        return False


@dataclass
class AnalysisResult:
    """Everything the analyzer learned about one application."""

    app_name: str
    schema: Schema
    paths: list[CodePath] = field(default_factory=list)
    #: wall-clock seconds spent analyzing, per phase
    timings: dict[str, float] = field(default_factory=dict)
    #: free-form notes (conservative fallbacks taken, annotations used, ...)
    notes: list[str] = field(default_factory=list)

    @property
    def effectful_paths(self) -> list[CodePath]:
        return [p for p in self.paths if p.is_effectful()]

    def stats(self) -> dict[str, object]:
        """The per-application statistics reported in the paper's Table 4."""
        return {
            "app": self.app_name,
            "models": len(self.schema.models),
            "relations": len(self.schema.relations),
            "code_paths": len(self.paths),
            "effectful_paths": len(self.effectful_paths),
            "analysis_time_s": self.timings.get("analysis", 0.0),
        }
