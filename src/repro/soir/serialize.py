"""JSON (de)serialization of SOIR: schemas, expressions, commands, code
paths and whole analysis results.

Analysis and verification are separate phases (paper Figure 1: the
ANALYZER emits SOIR, the VERIFIER consumes it); persisting the IR lets the
two run in separate processes or sessions (``noctua analyze --json``).
The format round-trips exactly: ``loads(dumps(x)) == x``.
"""

from __future__ import annotations

import json
from typing import Any

from . import commands as C
from . import expr as E
from .path import AnalysisResult, Argument, CodePath
from .schema import FieldSchema, ModelSchema, RelationSchema, Schema
from .types import (
    BOOL,
    DATETIME,
    FLOAT,
    INT,
    STRING,
    Aggregation,
    Comparator,
    Direction,
    DRelation,
    ListType,
    ObjType,
    Order,
    RefType,
    SetType,
    SoirType,
)

_SCALARS = {"Bool": BOOL, "Int": INT, "Float": FLOAT, "String": STRING,
            "Datetime": DATETIME}


class SerializationError(Exception):
    pass


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def type_to_obj(t: SoirType) -> Any:
    if isinstance(t, ObjType):
        return {"kind": "obj", "model": t.model_name}
    if isinstance(t, SetType):
        return {"kind": "set", "model": t.model_name}
    if isinstance(t, RefType):
        return {"kind": "ref", "model": t.model_name}
    if isinstance(t, ListType):
        return {"kind": "list", "elem": type_to_obj(t.elem)}
    name = str(t)
    if name in _SCALARS:
        return name
    raise SerializationError(f"unserializable type {t!r}")


def type_from_obj(obj: Any) -> SoirType:
    if isinstance(obj, str):
        try:
            return _SCALARS[obj]
        except KeyError:
            raise SerializationError(f"unknown scalar type {obj!r}") from None
    kind = obj["kind"]
    if kind == "obj":
        return ObjType(obj["model"])
    if kind == "set":
        return SetType(obj["model"])
    if kind == "ref":
        return RefType(obj["model"])
    if kind == "list":
        return ListType(type_from_obj(obj["elem"]))
    raise SerializationError(f"unknown type kind {kind!r}")


def _relpath_to_obj(relpath) -> list:
    return [{"relation": h.relation, "direction": h.direction.value}
            for h in relpath]


def _relpath_from_obj(items) -> tuple:
    return tuple(
        DRelation(i["relation"], Direction(i["direction"])) for i in items
    )


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def expr_to_obj(e: E.Expr) -> dict:
    node: dict[str, Any] = {"node": type(e).__name__}
    if isinstance(e, E.Lit):
        value = e.value
        if isinstance(value, tuple):
            value = {"__tuple__": list(value)}
        node["value"] = value
        node["type"] = type_to_obj(e.lit_type)
    elif isinstance(e, E.NoneLit):
        node["type"] = type_to_obj(e.none_type)
    elif isinstance(e, E.Var):
        node["name"] = e.name
        node["type"] = type_to_obj(e.var_type)
    elif isinstance(e, E.Opaque):
        node["name"] = e.name
        node["type"] = type_to_obj(e.opaque_type)
        node["deps"] = [expr_to_obj(d) for d in e.deps]
    elif isinstance(e, E.BinOp):
        node["op"] = e.op
        node["left"] = expr_to_obj(e.left)
        node["right"] = expr_to_obj(e.right)
    elif isinstance(e, (E.Neg, E.Not)):
        node["operand"] = expr_to_obj(e.operand)
    elif isinstance(e, E.Cmp):
        node["op"] = e.op.name
        node["left"] = expr_to_obj(e.left)
        node["right"] = expr_to_obj(e.right)
    elif isinstance(e, (E.And, E.Or)):
        node["args"] = [expr_to_obj(a) for a in e.args]
    elif isinstance(e, E.Ite):
        node["cond"] = expr_to_obj(e.cond)
        node["then"] = expr_to_obj(e.then_)
        node["else"] = expr_to_obj(e.else_)
    elif isinstance(e, E.FieldGet):
        node["obj"] = expr_to_obj(e.obj)
        node["field"] = e.field
        node["type"] = type_to_obj(e.field_type)
    elif isinstance(e, E.SetField):
        node["field"] = e.field
        node["value"] = expr_to_obj(e.value)
        node["obj"] = expr_to_obj(e.obj)
    elif isinstance(e, E.MakeObj):
        node["model"] = e.model
        node["fields"] = [[n, expr_to_obj(v)] for n, v in e.fields]
    elif isinstance(e, E.MapSet):
        node["qs"] = expr_to_obj(e.qs)
        node["field"] = e.field
        node["value"] = expr_to_obj(e.value)
    elif isinstance(e, (E.Singleton, E.RefOf)):
        node["obj"] = expr_to_obj(e.obj)
    elif isinstance(e, E.Deref):
        node["ref"] = expr_to_obj(e.ref)
        node["model"] = e.model
    elif isinstance(e, (E.AnyOf, E.FirstOf, E.LastOf, E.ReverseSet, E.IsEmpty)):
        node["qs"] = expr_to_obj(e.qs)
    elif isinstance(e, E.All):
        node["model"] = e.model
    elif isinstance(e, E.Filter):
        node["qs"] = expr_to_obj(e.qs)
        node["relpath"] = _relpath_to_obj(e.relpath)
        node["field"] = e.field
        node["op"] = e.op.name
        node["value"] = expr_to_obj(e.value)
    elif isinstance(e, E.Follow):
        node["qs"] = expr_to_obj(e.qs)
        node["relpath"] = _relpath_to_obj(e.relpath)
        node["target"] = e.target_model
    elif isinstance(e, E.OrderBy):
        node["qs"] = expr_to_obj(e.qs)
        node["field"] = e.field
        node["order"] = e.order.value
    elif isinstance(e, E.Aggregate):
        node["qs"] = expr_to_obj(e.qs)
        node["agg"] = e.agg.value
        node["field"] = e.field
        node["type"] = type_to_obj(e.result_type)
    elif isinstance(e, E.Exists):
        node["model"] = e.model
        node["ref"] = expr_to_obj(e.ref)
    elif isinstance(e, E.MemberOf):
        node["obj"] = expr_to_obj(e.obj)
        node["qs"] = expr_to_obj(e.qs)
    else:
        raise SerializationError(f"unserializable node {type(e).__name__}")
    return node


def expr_from_obj(obj: dict) -> E.Expr:
    kind = obj["node"]
    if kind == "Lit":
        value = obj["value"]
        if isinstance(value, dict) and "__tuple__" in value:
            value = tuple(value["__tuple__"])
        return E.Lit(value, type_from_obj(obj["type"]))
    if kind == "NoneLit":
        return E.NoneLit(type_from_obj(obj["type"]))
    if kind == "Var":
        return E.Var(obj["name"], type_from_obj(obj["type"]))
    if kind == "Opaque":
        return E.Opaque(
            obj["name"], type_from_obj(obj["type"]),
            tuple(expr_from_obj(d) for d in obj.get("deps", ())),
        )
    if kind == "BinOp":
        return E.BinOp(obj["op"], expr_from_obj(obj["left"]),
                       expr_from_obj(obj["right"]))
    if kind == "Neg":
        return E.Neg(expr_from_obj(obj["operand"]))
    if kind == "Not":
        return E.Not(expr_from_obj(obj["operand"]))
    if kind == "Cmp":
        return E.Cmp(Comparator[obj["op"]], expr_from_obj(obj["left"]),
                     expr_from_obj(obj["right"]))
    if kind == "And":
        return E.And(tuple(expr_from_obj(a) for a in obj["args"]))
    if kind == "Or":
        return E.Or(tuple(expr_from_obj(a) for a in obj["args"]))
    if kind == "Ite":
        return E.Ite(expr_from_obj(obj["cond"]), expr_from_obj(obj["then"]),
                     expr_from_obj(obj["else"]))
    if kind == "FieldGet":
        return E.FieldGet(expr_from_obj(obj["obj"]), obj["field"],
                          type_from_obj(obj["type"]))
    if kind == "SetField":
        return E.SetField(obj["field"], expr_from_obj(obj["value"]),
                          expr_from_obj(obj["obj"]))
    if kind == "MakeObj":
        return E.MakeObj(obj["model"], tuple(
            (n, expr_from_obj(v)) for n, v in obj["fields"]
        ))
    if kind == "MapSet":
        return E.MapSet(expr_from_obj(obj["qs"]), obj["field"],
                        expr_from_obj(obj["value"]))
    if kind == "Singleton":
        return E.Singleton(expr_from_obj(obj["obj"]))
    if kind == "RefOf":
        return E.RefOf(expr_from_obj(obj["obj"]))
    if kind == "Deref":
        return E.Deref(expr_from_obj(obj["ref"]), obj["model"])
    if kind == "AnyOf":
        return E.AnyOf(expr_from_obj(obj["qs"]))
    if kind == "FirstOf":
        return E.FirstOf(expr_from_obj(obj["qs"]))
    if kind == "LastOf":
        return E.LastOf(expr_from_obj(obj["qs"]))
    if kind == "ReverseSet":
        return E.ReverseSet(expr_from_obj(obj["qs"]))
    if kind == "IsEmpty":
        return E.IsEmpty(expr_from_obj(obj["qs"]))
    if kind == "All":
        return E.All(obj["model"])
    if kind == "Filter":
        return E.Filter(
            expr_from_obj(obj["qs"]), _relpath_from_obj(obj["relpath"]),
            obj["field"], Comparator[obj["op"]], expr_from_obj(obj["value"]),
        )
    if kind == "Follow":
        return E.Follow(expr_from_obj(obj["qs"]),
                        _relpath_from_obj(obj["relpath"]), obj["target"])
    if kind == "OrderBy":
        return E.OrderBy(expr_from_obj(obj["qs"]), obj["field"],
                         Order(obj["order"]))
    if kind == "Aggregate":
        return E.Aggregate(expr_from_obj(obj["qs"]), Aggregation(obj["agg"]),
                           obj["field"], type_from_obj(obj["type"]))
    if kind == "Exists":
        return E.Exists(obj["model"], expr_from_obj(obj["ref"]))
    if kind == "MemberOf":
        return E.MemberOf(expr_from_obj(obj["obj"]), expr_from_obj(obj["qs"]))
    raise SerializationError(f"unknown node kind {kind!r}")


# ---------------------------------------------------------------------------
# Commands, paths, schema, result
# ---------------------------------------------------------------------------


def command_to_obj(cmd: C.Command) -> dict:
    if isinstance(cmd, C.Guard):
        return {"cmd": "guard", "cond": expr_to_obj(cmd.cond)}
    if isinstance(cmd, C.Update):
        return {"cmd": "update", "qs": expr_to_obj(cmd.qs)}
    if isinstance(cmd, C.Delete):
        return {"cmd": "delete", "qs": expr_to_obj(cmd.qs)}
    if isinstance(cmd, C.Link):
        return {"cmd": "link", "relation": cmd.relation,
                "src": expr_to_obj(cmd.src), "dst": expr_to_obj(cmd.dst)}
    if isinstance(cmd, C.Delink):
        return {"cmd": "delink", "relation": cmd.relation,
                "src": expr_to_obj(cmd.src), "dst": expr_to_obj(cmd.dst)}
    if isinstance(cmd, C.RLink):
        return {"cmd": "rlink", "relation": cmd.relation,
                "srcs": expr_to_obj(cmd.srcs), "dst": expr_to_obj(cmd.dst)}
    if isinstance(cmd, C.ClearLinks):
        return {"cmd": "clearlinks", "relation": cmd.relation,
                "obj": expr_to_obj(cmd.obj), "end": cmd.end}
    raise SerializationError(f"unserializable command {type(cmd).__name__}")


def command_from_obj(obj: dict) -> C.Command:
    kind = obj["cmd"]
    if kind == "guard":
        return C.Guard(expr_from_obj(obj["cond"]))
    if kind == "update":
        return C.Update(expr_from_obj(obj["qs"]))
    if kind == "delete":
        return C.Delete(expr_from_obj(obj["qs"]))
    if kind == "link":
        return C.Link(obj["relation"], expr_from_obj(obj["src"]),
                      expr_from_obj(obj["dst"]))
    if kind == "delink":
        return C.Delink(obj["relation"], expr_from_obj(obj["src"]),
                        expr_from_obj(obj["dst"]))
    if kind == "rlink":
        return C.RLink(obj["relation"], expr_from_obj(obj["srcs"]),
                       expr_from_obj(obj["dst"]))
    if kind == "clearlinks":
        return C.ClearLinks(obj["relation"], expr_from_obj(obj["obj"]),
                            obj["end"])
    raise SerializationError(f"unknown command kind {kind!r}")


def path_to_obj(path: CodePath) -> dict:
    return {
        "name": path.name,
        "view": path.view,
        "args": [
            {"name": a.name, "type": type_to_obj(a.type), "source": a.source,
             "unique_id": a.unique_id}
            for a in path.args
        ],
        "commands": [command_to_obj(c) for c in path.commands],
        "branch_trace": [list(t) for t in path.branch_trace],
        "aborted": path.aborted,
        "conservative": path.conservative,
        "abort_reason": path.abort_reason,
    }


def path_from_obj(obj: dict) -> CodePath:
    return CodePath(
        name=obj["name"],
        view=obj.get("view", ""),
        args=tuple(
            Argument(a["name"], type_from_obj(a["type"]), a["source"],
                     a["unique_id"])
            for a in obj["args"]
        ),
        commands=tuple(command_from_obj(c) for c in obj["commands"]),
        branch_trace=tuple((k, v) for k, v in obj.get("branch_trace", [])),
        aborted=obj.get("aborted", False),
        conservative=obj.get("conservative", False),
        abort_reason=obj.get("abort_reason", ""),
    )


def schema_to_obj(schema: Schema) -> dict:
    return {
        "models": [
            {
                "name": m.name,
                "pk": m.pk,
                "auto_pk": m.auto_pk,
                "unique_together": [list(g) for g in m.unique_together],
                "fields": [
                    {
                        "name": f.name,
                        "type": type_to_obj(f.type),
                        "unique": f.unique,
                        "nullable": f.nullable,
                        "min_value": f.min_value,
                        "choices": list(f.choices) if f.choices else None,
                    }
                    for f in m.fields
                ],
            }
            for m in schema.models.values()
        ],
        "relations": [
            {
                "name": r.name, "source": r.source, "target": r.target,
                "kind": r.kind, "on_delete": r.on_delete,
                "reverse_name": r.reverse_name, "nullable": r.nullable,
            }
            for r in schema.relations.values()
        ],
    }


def schema_from_obj(obj: dict) -> Schema:
    schema = Schema()
    for m in obj["models"]:
        schema.add_model(ModelSchema(
            name=m["name"],
            pk=m["pk"],
            auto_pk=m["auto_pk"],
            unique_together=tuple(tuple(g) for g in m["unique_together"]),
            fields=tuple(
                FieldSchema(
                    name=f["name"],
                    type=type_from_obj(f["type"]),
                    unique=f["unique"],
                    nullable=f["nullable"],
                    min_value=f["min_value"],
                    choices=tuple(f["choices"]) if f["choices"] else None,
                )
                for f in m["fields"]
            ),
        ))
    for r in obj["relations"]:
        schema.add_relation(RelationSchema(
            name=r["name"], source=r["source"], target=r["target"],
            kind=r["kind"], on_delete=r["on_delete"],
            reverse_name=r["reverse_name"], nullable=r["nullable"],
        ))
    return schema


def result_to_obj(result: AnalysisResult) -> dict:
    return {
        "app": result.app_name,
        "schema": schema_to_obj(result.schema),
        "paths": [path_to_obj(p) for p in result.paths],
        "timings": result.timings,
        "notes": result.notes,
    }


def result_from_obj(obj: dict) -> AnalysisResult:
    return AnalysisResult(
        app_name=obj["app"],
        schema=schema_from_obj(obj["schema"]),
        paths=[path_from_obj(p) for p in obj["paths"]],
        timings=dict(obj.get("timings", {})),
        notes=list(obj.get("notes", [])),
    )


def dumps(result: AnalysisResult, *, indent: int | None = None) -> str:
    return json.dumps(result_to_obj(result), indent=indent)


def loads(text: str) -> AnalysisResult:
    return result_from_obj(json.loads(text))
