"""Concrete database states for SOIR execution.

A :class:`DBState` is a concrete snapshot of the replicated database:

* ``tables`` — per model, a mapping from primary-key value to row (a dict
  from field name to scalar value);
* ``assocs`` — per relation, the set of ``(source_pk, target_pk)``
  association pairs (paper §3.2 represents a relation as a set of
  associations);
* ``order`` — per model, a mapping from primary-key value to an integer
  order number (the decoupled order component of the paper's encoding,
  §4.2); and a per-model counter for assigning order to inserts.

States are plain mutable containers; the interpreter copies them before
executing a path so callers keep the original.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from .schema import Schema


@dataclass
class DBState:
    """A concrete database state."""

    tables: dict[str, dict[object, dict[str, object]]] = field(default_factory=dict)
    assocs: dict[str, set[tuple[object, object]]] = field(default_factory=dict)
    order: dict[str, dict[object, int]] = field(default_factory=dict)
    next_order: dict[str, int] = field(default_factory=dict)

    @classmethod
    def empty(cls, schema: Schema) -> "DBState":
        state = cls()
        for name in schema.models:
            state.tables[name] = {}
            state.order[name] = {}
            state.next_order[name] = 0
        for name in schema.relations:
            state.assocs[name] = set()
        return state

    def clone(self) -> "DBState":
        return DBState(
            tables={m: {pk: dict(row) for pk, row in t.items()} for m, t in self.tables.items()},
            assocs={r: set(pairs) for r, pairs in self.assocs.items()},
            order={m: dict(o) for m, o in self.order.items()},
            next_order=dict(self.next_order),
        )

    def table(self, model: str) -> dict[object, dict[str, object]]:
        return self.tables.setdefault(model, {})

    def relation(self, name: str) -> set[tuple[object, object]]:
        return self.assocs.setdefault(name, set())

    def insert_row(self, model: str, pk: object, row: dict[str, object]) -> None:
        self.table(model)[pk] = dict(row)
        order = self.order.setdefault(model, {})
        if pk not in order:
            counter = self.next_order.get(model, 0)
            order[pk] = counter
            self.next_order[model] = counter + 1

    def delete_row(self, model: str, pk: object) -> None:
        self.table(model).pop(pk, None)
        self.order.setdefault(model, {}).pop(pk, None)

    def canonical(self, *, with_order: bool = False) -> tuple:
        """A hashable canonical form, used for state-equality comparison.

        The commutativity check compares states *without* the order
        component by default: the paper's encoding makes merged-in order
        opaque (§4.2), so bare insertion order is not a divergence witness —
        order differences only count when they become observable through
        ``first``/``last``/``orderby`` reads, which surface in ``data``.
        """
        tables = tuple(
            (m, tuple(sorted((repr(pk), tuple(sorted((k, repr(v)) for k, v in row.items())))
                             for pk, row in t.items())))
            for m, t in sorted(self.tables.items())
        )
        assocs = tuple(
            (r, tuple(sorted((repr(a), repr(b)) for a, b in pairs)))
            for r, pairs in sorted(self.assocs.items())
        )
        if not with_order:
            return (tables, assocs)
        order = tuple(
            (m, tuple(sorted((repr(pk), n) for pk, n in o.items())))
            for m, o in sorted(self.order.items())
        )
        return (tables, assocs, order)

    def same_state(self, other: "DBState", *, with_order: bool = False) -> bool:
        # Empty tables / association sets are materialized lazily by
        # ``table()`` / ``relation()``; normalize them away.
        if {m: t for m, t in self.tables.items() if t} != {
            m: t for m, t in other.tables.items() if t
        }:
            return False
        mine = {r: pairs for r, pairs in self.assocs.items() if pairs}
        theirs = {r: pairs for r, pairs in other.assocs.items() if pairs}
        if mine != theirs:
            return False
        if with_order:
            return self.order == other.order
        return True

    def deepcopy(self) -> "DBState":
        return copy.deepcopy(self)


@dataclass
class ObjVal:
    """A runtime object value: a snapshot of one row of ``model``."""

    model: str
    fields: dict[str, object]

    def get(self, name: str) -> object:
        return self.fields[name]

    def replace(self, name: str, value: object) -> "ObjVal":
        new_fields = dict(self.fields)
        new_fields[name] = value
        return ObjVal(self.model, new_fields)

    def clone(self) -> "ObjVal":
        return ObjVal(self.model, dict(self.fields))


@dataclass
class QuerySetVal:
    """A runtime query set value: an ordered list of object snapshots."""

    model: str
    objs: list[ObjVal]

    def pks(self, pk_field: str) -> list[object]:
        return [o.fields[pk_field] for o in self.objs]
