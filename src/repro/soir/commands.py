"""SOIR commands.

A command models one transition of the system state during the execution of
a code path (paper §3.1.3).  Commands take expressions as arguments (where
database queries may occur) and possibly change the replicated database:

* ``guard(cond)`` aborts the path when ``cond`` is false — the conjunction
  of all guards, each evaluated at its program point, is the path's
  precondition ``g_P``.
* ``update(qs)`` merges the (possibly modified) objects of ``qs`` into the
  current state, regardless of prior existence; inserts are expressed as an
  update of a singleton fresh object plus a non-existence guard.
* ``delete(qs)`` removes the objects of ``qs``, triggering the configured
  referential actions (cascade / set-null / protect) on incident relations.
* ``link``/``delink``/``rlink``/``clearlinks`` manipulate relation
  association sets (paper §3.2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Iterator

from .expr import Expr


@dataclass(frozen=True)
class Command:
    """Base class of all SOIR commands."""

    _expr_fields: ClassVar[tuple[str, ...]] = ()

    def exprs(self) -> tuple[Expr, ...]:
        """The argument expressions of this command, in order."""
        return tuple(getattr(self, name) for name in self._expr_fields)

    def with_exprs(self, new_exprs: tuple[Expr, ...]) -> "Command":
        if len(new_exprs) != len(self._expr_fields):
            raise ValueError("expression arity mismatch")
        return dataclasses.replace(self, **dict(zip(self._expr_fields, new_exprs)))

    def walk_exprs(self) -> Iterator[Expr]:
        for e in self.exprs():
            yield from e.walk()

    def is_effectful(self) -> bool:
        """Whether the command can change the replicated database state."""
        return True


@dataclass(frozen=True)
class Guard(Command):
    """Abort the code path if ``cond`` evaluates to false."""

    cond: Expr
    _expr_fields = ("cond",)

    def is_effectful(self) -> bool:
        return False


@dataclass(frozen=True)
class Update(Command):
    """Merge the objects of ``qs`` into the current state."""

    qs: Expr
    _expr_fields = ("qs",)


@dataclass(frozen=True)
class Delete(Command):
    """Delete the objects of ``qs`` from the current state."""

    qs: Expr
    _expr_fields = ("qs",)


@dataclass(frozen=True)
class Link(Command):
    """Create an association between ``src`` and ``dst`` in ``relation``.

    For an ``fk`` relation the new association replaces any existing
    association of ``src`` (a source has at most one target); for ``m2m``
    the pair is added to the association set.
    """

    relation: str
    src: Expr
    dst: Expr
    _expr_fields = ("src", "dst")


@dataclass(frozen=True)
class Delink(Command):
    """Remove the association between ``src`` and ``dst`` in ``relation``."""

    relation: str
    src: Expr
    dst: Expr
    _expr_fields = ("src", "dst")


@dataclass(frozen=True)
class RLink(Command):
    """Link every object of query set ``srcs`` with object ``dst``."""

    relation: str
    srcs: Expr
    dst: Expr
    _expr_fields = ("srcs", "dst")


@dataclass(frozen=True)
class ClearLinks(Command):
    """Remove all associations of ``obj`` in ``relation``.

    ``end`` selects which end ``obj`` sits at: ``"source"`` or ``"target"``.
    """

    relation: str
    obj: Expr
    end: str = "source"
    _expr_fields = ("obj",)

    def __post_init__(self) -> None:
        if self.end not in ("source", "target"):
            raise ValueError(f"bad relation end {self.end!r}")
