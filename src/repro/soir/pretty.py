"""Pretty-printer for SOIR.

Produces a stable, human-readable concrete syntax used in analysis reports
and as canonical dictionary keys (two structurally equal terms always print
identically).
"""

from __future__ import annotations

from . import commands as C
from . import expr as E
from .path import CodePath


def pp_expr(e: E.Expr) -> str:
    if isinstance(e, E.Lit):
        if isinstance(e.value, str):
            return repr(e.value)
        return str(e.value)
    if isinstance(e, E.NoneLit):
        return f"none:{e.none_type}"
    if isinstance(e, E.Var):
        return e.name
    if isinstance(e, E.Opaque):
        deps = ", ".join(pp_expr(d) for d in e.deps)
        return f"opaque[{e.name}]({deps})"
    if isinstance(e, E.BinOp):
        return f"({pp_expr(e.left)} {e.op} {pp_expr(e.right)})"
    if isinstance(e, E.Neg):
        return f"(-{pp_expr(e.operand)})"
    if isinstance(e, E.Cmp):
        return f"({pp_expr(e.left)} {e.op} {pp_expr(e.right)})"
    if isinstance(e, E.Not):
        return f"not({pp_expr(e.operand)})"
    if isinstance(e, E.And):
        return "(" + " and ".join(pp_expr(a) for a in e.args) + ")"
    if isinstance(e, E.Or):
        return "(" + " or ".join(pp_expr(a) for a in e.args) + ")"
    if isinstance(e, E.Ite):
        return f"ite({pp_expr(e.cond)}, {pp_expr(e.then_)}, {pp_expr(e.else_)})"
    if isinstance(e, E.FieldGet):
        return f"{pp_expr(e.obj)}.{e.field}"
    if isinstance(e, E.SetField):
        return f"setf({e.field}, {pp_expr(e.value)}, {pp_expr(e.obj)})"
    if isinstance(e, E.MakeObj):
        fields = ", ".join(f"{n}={pp_expr(v)}" for n, v in e.fields)
        return f"new<{e.model}>({fields})"
    if isinstance(e, E.MapSet):
        return f"mapset({e.field}, {pp_expr(e.value)}, {pp_expr(e.qs)})"
    if isinstance(e, E.Singleton):
        return f"singleton({pp_expr(e.obj)})"
    if isinstance(e, E.Deref):
        return f"deref<{e.model}>({pp_expr(e.ref)})"
    if isinstance(e, E.RefOf):
        return f"refof({pp_expr(e.obj)})"
    if isinstance(e, E.AnyOf):
        return f"any({pp_expr(e.qs)})"
    if isinstance(e, E.All):
        return f"all<{e.model}>"
    if isinstance(e, E.Filter):
        hops = "".join(str(h) + "." for h in e.relpath)
        return (
            f"filter({hops}{e.field} {e.op} {pp_expr(e.value)}, {pp_expr(e.qs)})"
        )
    if isinstance(e, E.Follow):
        hops = ", ".join(str(h) for h in e.relpath)
        return f"follow([{hops}], {pp_expr(e.qs)})"
    if isinstance(e, E.OrderBy):
        return f"orderby({e.field}, {e.order}, {pp_expr(e.qs)})"
    if isinstance(e, E.ReverseSet):
        return f"reverse({pp_expr(e.qs)})"
    if isinstance(e, E.FirstOf):
        return f"first({pp_expr(e.qs)})"
    if isinstance(e, E.LastOf):
        return f"last({pp_expr(e.qs)})"
    if isinstance(e, E.Aggregate):
        return f"aggregate({e.agg}, {e.field}, {pp_expr(e.qs)})"
    if isinstance(e, E.IsEmpty):
        return f"empty({pp_expr(e.qs)})"
    if isinstance(e, E.Exists):
        return f"exists<{e.model}>({pp_expr(e.ref)})"
    if isinstance(e, E.MemberOf):
        return f"member({pp_expr(e.obj)}, {pp_expr(e.qs)})"
    raise TypeError(f"unknown expression node {type(e).__name__}")


def pp_command(c: C.Command) -> str:
    if isinstance(c, C.Guard):
        return f"guard({pp_expr(c.cond)})"
    if isinstance(c, C.Update):
        return f"update({pp_expr(c.qs)})"
    if isinstance(c, C.Delete):
        return f"delete({pp_expr(c.qs)})"
    if isinstance(c, C.Link):
        return f"link<{c.relation}>({pp_expr(c.src)}, {pp_expr(c.dst)})"
    if isinstance(c, C.Delink):
        return f"delink<{c.relation}>({pp_expr(c.src)}, {pp_expr(c.dst)})"
    if isinstance(c, C.RLink):
        return f"rlink<{c.relation}>({pp_expr(c.srcs)}, {pp_expr(c.dst)})"
    if isinstance(c, C.ClearLinks):
        return f"clearlinks<{c.relation}:{c.end}>({pp_expr(c.obj)})"
    raise TypeError(f"unknown command node {type(c).__name__}")


def pp_path(p: CodePath) -> str:
    lines = [f"path {p.name}:"]
    if p.args:
        args = ", ".join(
            f"{a.name}: {a.type}" + ("!" if a.unique_id else "") for a in p.args
        )
        lines.append(f"  args({args})")
    for cmd in p.commands:
        lines.append(f"  {pp_command(cmd)};")
    return "\n".join(lines)


def pp_state(state) -> str:
    """A stable, human-readable dump of a concrete :class:`DBState`.

    Rows sorted by model then primary key, associations by relation then
    pair; empty tables/relations elided.  Used by the restriction
    explainer (``repro.obs.explain``) to print witness states, so two
    equal states always print identically.
    """
    lines: list[str] = []
    for model in sorted(state.tables):
        rows = state.tables[model]
        for pk in sorted(rows, key=repr):
            fields = ", ".join(
                f"{name}={value!r}"
                for name, value in sorted(rows[pk].items())
            )
            lines.append(f"  {model}[{pk!r}]  {fields}")
    for relation in sorted(state.assocs):
        pairs = state.assocs[relation]
        if not pairs:
            continue
        rendered = ", ".join(
            f"({a!r}, {b!r})" for a, b in sorted(pairs, key=repr)
        )
        lines.append(f"  {relation}: {rendered}")
    return "\n".join(lines) if lines else "  (empty)"
