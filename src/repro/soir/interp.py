"""Concrete interpreter for SOIR code paths.

Executes a code path against a :class:`~repro.soir.state.DBState` with a
concrete argument environment.  The interpreter defines the *reference
semantics* of SOIR: the verifier's grounded counterexample search and the
geo-replication simulator both apply effects through it, so a single
definition of the semantics backs every experiment.

Execution either *commits* (all guards held; effects applied) or *aborts*
(a guard failed, a partial query hit an empty set, or a protected relation
blocked a delete).  ``g_P(x, S)`` — the paper's precondition — is exactly
"``run_path`` commits".
"""

from __future__ import annotations

from dataclasses import dataclass

from . import commands as C
from . import expr as E
from .schema import Schema
from .state import DBState, ObjVal, QuerySetVal
from .types import Aggregation, Comparator, Direction, Order
from .path import CodePath


class PathAborted(Exception):
    """Internal control flow: the path cannot run to completion."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class InterpError(Exception):
    """A genuine interpreter bug or unsupported construct (not an abort)."""


@dataclass
class Outcome:
    """Result of executing a code path."""

    committed: bool
    state: DBState
    reason: str = ""


class Interpreter:
    """Evaluates SOIR expressions and executes commands over a DBState.

    ``mode`` selects the semantics:

    * ``"run"`` — *generation*: guards checked, unique constraints and
      referential protections enforced; any violation aborts the path.
    * ``"apply"`` — *replication*: the effect of an already-accepted
      operation lands on a replica.  Mirroring the paper's total
      array-based encoding (§4.2: ``data`` is a total map), dereferencing
      a missing object yields a *ghost* (primary key plus type-default
      fields), merges write unconditionally (constraint anomalies are the
      semantic check's concern, not convergence's), and PROTECT deletes
      proceed, leaving incident associations dangling.
    """

    def __init__(
        self,
        schema: Schema,
        state: DBState,
        env: dict[str, object],
        *,
        mode: str = "run",
    ):
        self.schema = schema
        self.state = state
        self.env = env
        if mode not in ("run", "apply"):
            raise InterpError(f"unknown interpreter mode {mode!r}")
        self.mode = mode

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def eval(self, e: E.Expr) -> object:
        method = getattr(self, f"_eval_{type(e).__name__}", None)
        if method is None:
            raise InterpError(f"no evaluator for {type(e).__name__}")
        return method(e)

    def _eval_Lit(self, e: E.Lit) -> object:
        return e.value

    def _eval_NoneLit(self, e: E.NoneLit) -> object:
        return None

    def _eval_Var(self, e: E.Var) -> object:
        try:
            return self.env[e.name]
        except KeyError:
            raise InterpError(f"unbound variable {e.name!r}") from None

    def _eval_Opaque(self, e: E.Opaque) -> object:
        # Concrete execution of an opaque value: the environment may pin it
        # (the verifier enumerates opaque values like any other argument).
        if e.name in self.env:
            return self.env[e.name]
        raise InterpError(f"opaque value {e.name!r} not pinned by environment")

    def _eval_BinOp(self, e: E.BinOp) -> object:
        left = self.eval(e.left)
        right = self.eval(e.right)
        if left is None or right is None:
            raise PathAborted("arithmetic on NULL")
        if e.op == "+":
            return left + right
        if e.op == "-":
            return left - right
        if e.op == "*":
            return left * right
        if e.op == "/":
            if right == 0:
                raise PathAborted("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                # SQL / Python 3 semantics differ; SOIR integer division
                # truncates toward zero, matching SQL.
                q = abs(left) // abs(right)
                return q if (left >= 0) == (right >= 0) else -q
            return left / right
        if e.op == "%":
            if right == 0:
                raise PathAborted("modulo by zero")
            return left % right
        if e.op == "concat":
            return str(left) + str(right)
        raise InterpError(f"unknown operator {e.op}")

    def _eval_Neg(self, e: E.Neg) -> object:
        v = self.eval(e.operand)
        if v is None:
            raise PathAborted("negation of NULL")
        return -v

    def _eval_Cmp(self, e: E.Cmp) -> bool:
        left = self.eval(e.left)
        right = self.eval(e.right)
        return compare(e.op, left, right)

    def _eval_Not(self, e: E.Not) -> bool:
        return not self.eval(e.operand)

    def _eval_And(self, e: E.And) -> bool:
        return all(self.eval(a) for a in e.args)

    def _eval_Or(self, e: E.Or) -> bool:
        return any(self.eval(a) for a in e.args)

    def _eval_Ite(self, e: E.Ite) -> object:
        return self.eval(e.then_) if self.eval(e.cond) else self.eval(e.else_)

    def _eval_FieldGet(self, e: E.FieldGet) -> object:
        obj = self.eval(e.obj)
        if not isinstance(obj, ObjVal):
            raise InterpError("field access on non-object")
        try:
            return obj.fields[e.field]
        except KeyError:
            raise InterpError(
                f"object of {obj.model} has no field {e.field!r}"
            ) from None

    def _eval_SetField(self, e: E.SetField) -> ObjVal:
        obj = self.eval(e.obj)
        if not isinstance(obj, ObjVal):
            raise InterpError("setf on non-object")
        return obj.replace(e.field, self.eval(e.value))

    def _eval_MakeObj(self, e: E.MakeObj) -> ObjVal:
        model = self.schema.model(e.model)
        fields = {name: self.eval(v) for name, v in e.fields}
        for fname in model.field_names:
            if fname not in fields:
                raise InterpError(
                    f"new<{e.model}> missing field {fname!r}"
                )
        return ObjVal(e.model, fields)

    def _eval_MapSet(self, e: E.MapSet) -> QuerySetVal:
        qs = self.eval(e.qs)
        value = self.eval(e.value)
        return QuerySetVal(qs.model, [o.replace(e.field, value) for o in qs.objs])

    def _eval_Singleton(self, e: E.Singleton) -> QuerySetVal:
        obj = self.eval(e.obj)
        if not isinstance(obj, ObjVal):
            raise InterpError("singleton of non-object")
        return QuerySetVal(obj.model, [obj.clone()])

    def _eval_Deref(self, e: E.Deref) -> ObjVal:
        pk = self.eval(e.ref)
        row = self.state.table(e.model).get(pk)
        if row is None:
            if self.mode == "apply":
                return self._ghost(e.model, pk)
            raise PathAborted(f"deref of missing {e.model}[{pk!r}]")
        return ObjVal(e.model, dict(row))

    def _ghost(self, model_name: str, pk: object) -> ObjVal:
        """A deterministic stand-in for a dereferenced missing object."""
        model = self.schema.model(model_name)
        fields: dict[str, object] = {}
        for f in model.fields:
            if f.name == model.pk:
                fields[f.name] = pk
            elif f.nullable:
                fields[f.name] = None
            else:
                fields[f.name] = _type_default(f.type)
        return ObjVal(model_name, fields)

    def _eval_RefOf(self, e: E.RefOf) -> object:
        obj = self.eval(e.obj)
        if not isinstance(obj, ObjVal):
            raise InterpError("refof non-object")
        return obj.fields[self.schema.model(obj.model).pk]

    def _eval_AnyOf(self, e: E.AnyOf) -> ObjVal:
        qs = self.eval(e.qs)
        if not qs.objs:
            raise PathAborted("any() of empty query set")
        return qs.objs[0].clone()

    def _eval_All(self, e: E.All) -> QuerySetVal:
        model = self.schema.model(e.model)
        order = self.state.order.get(e.model, {})
        rows = sorted(
            self.state.table(e.model).items(),
            key=lambda item: order.get(item[0], 0),
        )
        return QuerySetVal(e.model, [ObjVal(e.model, dict(r)) for _, r in rows])

    def _eval_Filter(self, e: E.Filter) -> QuerySetVal:
        qs = self.eval(e.qs)
        value = self.eval(e.value)
        kept = []
        for obj in qs.objs:
            related = self._follow_objs([obj], e.relpath)
            if e.op == Comparator.ISNULL:
                # "null" over a relation path means no associated object
                # carries a non-null value for the field.
                has_value = any(r.fields.get(e.field) is not None for r in related)
                if (not has_value) == bool(value):
                    kept.append(obj)
            elif any(compare(e.op, r.fields.get(e.field), value) for r in related):
                kept.append(obj)
        return QuerySetVal(qs.model, kept)

    def _eval_Follow(self, e: E.Follow) -> QuerySetVal:
        qs = self.eval(e.qs)
        related = self._follow_objs(qs.objs, e.relpath)
        return QuerySetVal(e.target_model, related)

    def _follow_objs(self, objs: list[ObjVal], relpath) -> list[ObjVal]:
        current = objs
        for hop in relpath:
            rel = self.schema.relation(hop.relation)
            pairs = self.state.relation(hop.relation)
            if hop.direction == Direction.FORWARD:
                src_model, dst_model = rel.source, rel.target
                mapping = pairs
            else:
                src_model, dst_model = rel.target, rel.source
                mapping = {(b, a) for a, b in pairs}
            pk_field = self.schema.model(src_model).pk
            src_pks = {o.fields[pk_field] for o in current}
            dst_pks = {b for a, b in mapping if a in src_pks}
            dst_table = self.state.table(dst_model)
            dst_order = self.state.order.get(dst_model, {})
            current = [
                ObjVal(dst_model, dict(dst_table[pk]))
                for pk in sorted(dst_pks, key=lambda p: dst_order.get(p, 0))
                if pk in dst_table
            ]
        return current

    def _eval_OrderBy(self, e: E.OrderBy) -> QuerySetVal:
        qs = self.eval(e.qs)
        # Sort stably; NULLs first, matching common SQL dialect defaults.
        def key(o: ObjVal):
            v = o.fields.get(e.field)
            return (v is not None, v)

        objs = sorted(qs.objs, key=key, reverse=(e.order == Order.DESC))
        return QuerySetVal(qs.model, objs)

    def _eval_ReverseSet(self, e: E.ReverseSet) -> QuerySetVal:
        qs = self.eval(e.qs)
        return QuerySetVal(qs.model, list(reversed(qs.objs)))

    def _eval_FirstOf(self, e: E.FirstOf) -> ObjVal:
        qs = self.eval(e.qs)
        if not qs.objs:
            raise PathAborted("first() of empty query set")
        return qs.objs[0].clone()

    def _eval_LastOf(self, e: E.LastOf) -> ObjVal:
        qs = self.eval(e.qs)
        if not qs.objs:
            raise PathAborted("last() of empty query set")
        return qs.objs[-1].clone()

    def _eval_Aggregate(self, e: E.Aggregate) -> object:
        qs = self.eval(e.qs)
        if e.agg == Aggregation.CNT:
            return len(qs.objs)
        values = [
            o.fields.get(e.field)
            for o in qs.objs
            if o.fields.get(e.field) is not None
        ]
        if not values:
            return None
        if e.agg == Aggregation.MAX:
            return max(values)
        if e.agg == Aggregation.MIN:
            return min(values)
        if e.agg == Aggregation.SUM:
            return sum(values)
        if e.agg == Aggregation.AVG:
            return sum(values) / len(values)
        raise InterpError(f"unknown aggregation {e.agg}")

    def _eval_IsEmpty(self, e: E.IsEmpty) -> bool:
        qs = self.eval(e.qs)
        return not qs.objs

    def _eval_Exists(self, e: E.Exists) -> bool:
        pk = self.eval(e.ref)
        return pk in self.state.table(e.model)

    def _eval_MemberOf(self, e: E.MemberOf) -> bool:
        obj = self.eval(e.obj)
        qs = self.eval(e.qs)
        pk_field = self.schema.model(qs.model).pk
        pk = obj.fields[pk_field]
        return any(o.fields[pk_field] == pk for o in qs.objs)

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    def exec(self, cmd: C.Command) -> None:
        method = getattr(self, f"_exec_{type(cmd).__name__}", None)
        if method is None:
            raise InterpError(f"no executor for {type(cmd).__name__}")
        method(cmd)

    def _exec_Guard(self, cmd: C.Guard) -> None:
        if not self.eval(cmd.cond):
            raise PathAborted("guard failed")

    def _exec_Update(self, cmd: C.Update) -> None:
        qs = self.eval(cmd.qs)
        self.merge_objects(qs.model, qs.objs)

    def merge_objects(self, model_name: str, objs: list[ObjVal]) -> None:
        """Value-level ``update`` semantics (shared with the ORM backend)."""
        model = self.schema.model(model_name)
        if self.mode != "apply":
            self._check_unique(model, objs)
        for obj in objs:
            pk = obj.fields[model.pk]
            self.state.insert_row(model_name, pk, obj.fields)

    def _check_unique(self, model, objs: list[ObjVal]) -> None:
        """Unique-constraint preconditions for merged objects.

        Merging an object whose unique field collides with a *different*
        existing row violates the constraint; in a serializable execution
        that attempt aborts, so it is part of ``g_P``.
        """
        table = self.state.table(model.name)
        unique_fields = [f.name for f in model.fields if f.unique and f.name != model.pk]
        groups = list(model.unique_together)
        for obj in objs:
            pk = obj.fields[model.pk]
            for fname in unique_fields:
                v = obj.fields.get(fname)
                if v is None:
                    continue
                for other_pk, row in table.items():
                    if other_pk != pk and row.get(fname) == v:
                        raise PathAborted(
                            f"unique violation on {model.name}.{fname}"
                        )
            for group in groups:
                values = tuple(obj.fields.get(f) for f in group)
                for other_pk, row in table.items():
                    if other_pk != pk and tuple(row.get(f) for f in group) == values:
                        raise PathAborted(
                            f"unique_together violation on {model.name}{group}"
                        )
        # Objects within the same merge must be mutually consistent too.
        for i, a in enumerate(objs):
            for b in objs[i + 1:]:
                if a.fields[model.pk] == b.fields[model.pk]:
                    continue
                for fname in unique_fields:
                    if (
                        a.fields.get(fname) is not None
                        and a.fields.get(fname) == b.fields.get(fname)
                    ):
                        raise PathAborted(
                            f"unique violation on {model.name}.{fname}"
                        )

    def _exec_Delete(self, cmd: C.Delete) -> None:
        qs = self.eval(cmd.qs)
        model = self.schema.model(qs.model)
        pks = {o.fields[model.pk] for o in qs.objs}
        self._delete_pks(qs.model, pks)

    def _delete_pks(self, model_name: str, pks: set[object]) -> None:
        """Delete rows and apply referential actions, transitively."""
        pks = {pk for pk in pks if pk in self.state.table(model_name)}
        if not pks:
            return
        # Referential actions on relations targeting this model.
        for rel in self.schema.relations_of(model_name):
            pairs = self.state.relation(rel.name)
            if rel.target == model_name:
                hit = {(s, t) for s, t in pairs if t in pks}
                if not hit:
                    continue
                if rel.on_delete == "protect":
                    if self.mode == "apply":
                        # The protection held at the originating site; a
                        # replica applies the delete and leaves the (now
                        # dangling) associations in place.
                        continue
                    raise PathAborted(
                        f"protected relation {rel.name} blocks delete"
                    )
                pairs -= hit
                if rel.on_delete == "cascade" and rel.kind == "fk":
                    self._delete_pks(rel.source, {s for s, _ in hit})
                # set_null / do_nothing / m2m-cascade: association removal
                # is all that happens (for fk set_null the field itself is
                # modelled by the association, so removal *is* nulling).
            if rel.source == model_name:
                pairs -= {(s, t) for s, t in pairs if s in pks}
        for pk in pks:
            self.state.delete_row(model_name, pk)

    def delete_pks(self, model_name: str, pks: set[object]) -> None:
        """Value-level ``delete`` semantics (shared with the ORM backend)."""
        self._delete_pks(model_name, set(pks))

    def link_objects(self, relation: str, src: ObjVal, dst: ObjVal) -> None:
        """Value-level ``link`` (fk: replaces the source's association)."""
        self._link_one(self.schema.relation(relation), src, dst)

    def delink_objects(self, relation: str, src: ObjVal, dst: ObjVal) -> None:
        rel = self.schema.relation(relation)
        src_pk = src.fields[self.schema.model(rel.source).pk]
        dst_pk = dst.fields[self.schema.model(rel.target).pk]
        self.state.relation(relation).discard((src_pk, dst_pk))

    def clear_links(self, relation: str, obj: ObjVal, end: str) -> None:
        rel = self.schema.relation(relation)
        if end == "source":
            pk = obj.fields[self.schema.model(rel.source).pk]
            self.state.assocs[relation] = {
                p for p in self.state.relation(relation) if p[0] != pk
            }
        else:
            pk = obj.fields[self.schema.model(rel.target).pk]
            self.state.assocs[relation] = {
                p for p in self.state.relation(relation) if p[1] != pk
            }

    def _exec_Link(self, cmd: C.Link) -> None:
        rel = self.schema.relation(cmd.relation)
        src = self.eval(cmd.src)
        dst = self.eval(cmd.dst)
        self._link_one(rel, src, dst)

    def _link_one(self, rel, src: ObjVal, dst: ObjVal) -> None:
        src_pk = src.fields[self.schema.model(rel.source).pk]
        dst_pk = dst.fields[self.schema.model(rel.target).pk]
        pairs = self.state.relation(rel.name)
        if rel.kind == "fk":
            pairs -= {(s, t) for s, t in pairs if s == src_pk}
        pairs.add((src_pk, dst_pk))

    def _exec_Delink(self, cmd: C.Delink) -> None:
        rel = self.schema.relation(cmd.relation)
        src = self.eval(cmd.src)
        dst = self.eval(cmd.dst)
        src_pk = src.fields[self.schema.model(rel.source).pk]
        dst_pk = dst.fields[self.schema.model(rel.target).pk]
        self.state.relation(rel.name).discard((src_pk, dst_pk))

    def _exec_RLink(self, cmd: C.RLink) -> None:
        rel = self.schema.relation(cmd.relation)
        srcs = self.eval(cmd.srcs)
        dst = self.eval(cmd.dst)
        for src in srcs.objs:
            self._link_one(rel, src, dst)

    def _exec_ClearLinks(self, cmd: C.ClearLinks) -> None:
        rel = self.schema.relation(cmd.relation)
        obj = self.eval(cmd.obj)
        if cmd.end == "source":
            pk = obj.fields[self.schema.model(rel.source).pk]
            keep = lambda pair: pair[0] != pk  # noqa: E731
        else:
            pk = obj.fields[self.schema.model(rel.target).pk]
            keep = lambda pair: pair[1] != pk  # noqa: E731
        pairs = self.state.relation(rel.name)
        self.state.assocs[rel.name] = {p for p in pairs if keep(p)}


def compare(op: Comparator, left: object, right: object) -> bool:
    """SQL-flavoured comparison: NULL compares equal only to NULL via EQ/NE;
    ordered comparisons with NULL are false."""
    if op == Comparator.EQ:
        return left == right
    if op == Comparator.NE:
        return left != right
    if left is None or right is None:
        return False
    try:
        if op == Comparator.LT:
            return left < right
        if op == Comparator.LE:
            return left <= right
        if op == Comparator.GT:
            return left > right
        if op == Comparator.GE:
            return left >= right
    except TypeError:
        # Cross-type ordered comparison (e.g. a string request parameter
        # flowing into an integer column): never satisfied, like SQL's
        # failed casts under strict mode.
        return False
    if op == Comparator.CONTAINS:
        return str(right) in str(left)
    if op == Comparator.STARTSWITH:
        return str(left).startswith(str(right))
    if op == Comparator.IN:
        return left in right  # type: ignore[operator]
    raise InterpError(f"unknown comparator {op}")


def run_path(
    path: CodePath,
    state: DBState,
    env: dict[str, object],
    schema: Schema,
) -> Outcome:
    """Execute ``path`` with arguments ``env`` against a copy of ``state``.

    This is *generation* semantics: guards are checked, and any abort means
    the transaction rolls back (the outcome carries the untouched state).
    The input state is never modified.
    """
    working = state.clone()
    interp = Interpreter(schema, working, env)
    try:
        for cmd in path.commands:
            interp.exec(cmd)
    except PathAborted as abort:
        return Outcome(False, state.clone(), abort.reason)
    return Outcome(True, working, "")


def apply_path(
    path: CodePath,
    state: DBState,
    env: dict[str, object],
    schema: Schema,
) -> DBState:
    """Apply ``path``'s *effect* to a copy of ``state``.

    This is *replication* semantics (paper §2.1): the side effect of an
    accepted request is propagated and applied at every replica without
    re-checking its guards — those were validated at the originating site.
    Guards are therefore skipped.  If the effect is not applicable at all
    (a referenced object vanished, a merge is ill-defined), the application
    no-ops: the returned state equals the input.
    """
    working = state.clone()
    interp = Interpreter(schema, working, env, mode="apply")
    try:
        for cmd in path.commands:
            if isinstance(cmd, C.Guard):
                continue
            interp.exec(cmd)
    except PathAborted:
        # Residual partiality (e.g. first() of an empty set feeding an
        # effect): the effect is inapplicable here and lands as a no-op.
        return state.clone()
    return working


def _type_default(t) -> object:
    from .types import BOOL, FLOAT, STRING

    if t == BOOL:
        return False
    if t == FLOAT:
        return 0.0
    if t == STRING:
        return ""
    return 0


def precondition_holds(
    path: CodePath,
    state: DBState,
    env: dict[str, object],
    schema: Schema,
) -> bool:
    """``g_P(x, S)`` — whether ``path`` runs to completion from ``state``."""
    return run_path(path, state, env, schema).committed
