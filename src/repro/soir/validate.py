"""Static well-formedness validation of SOIR code paths.

The analyzer should only ever emit well-formed SOIR; this validator is the
contract between the analyzer and the verifier, and is run on every path in
tests and (cheaply) before verification.  Checks:

* every ``Var`` refers to a declared argument with a matching type;
* every model / relation / field named in the path exists in the schema;
* relation hops in ``filter``/``follow`` are chainable (each hop's source
  model matches the previous hop's result);
* command arguments are of the required SOIR types;
* ``MakeObj`` supplies every field of its model.
"""

from __future__ import annotations

from . import commands as C
from . import expr as E
from .path import CodePath
from .schema import Schema, SchemaError
from .types import Direction, ObjType, SetType


class ValidationError(Exception):
    """The path is not well-formed SOIR."""


def validate_path(path: CodePath, schema: Schema) -> None:
    """Raise :class:`ValidationError` if ``path`` is malformed."""
    arg_types = {a.name: a.type for a in path.args}
    v = _Validator(schema, arg_types, path.name)
    for cmd in path.commands:
        v.check_command(cmd)


def validate_result(paths: list[CodePath], schema: Schema) -> None:
    for p in paths:
        validate_path(p, schema)


class _Validator:
    def __init__(self, schema: Schema, arg_types: dict, path_name: str):
        self.schema = schema
        self.arg_types = arg_types
        self.path_name = path_name

    def fail(self, message: str) -> None:
        raise ValidationError(f"{self.path_name}: {message}")

    # -- commands -------------------------------------------------------

    def check_command(self, cmd: C.Command) -> None:
        for e in cmd.exprs():
            self.check_expr(e)
        if isinstance(cmd, C.Guard):
            if str(cmd.cond.type) != "Bool":
                self.fail(f"guard condition of type {cmd.cond.type}")
        elif isinstance(cmd, (C.Update, C.Delete)):
            if not isinstance(cmd.qs.type, SetType):
                self.fail(f"{type(cmd).__name__.lower()} of non-queryset")
        elif isinstance(cmd, (C.Link, C.Delink)):
            rel = self._relation(cmd.relation)
            self._expect_obj(cmd.src, rel.source, "link source")
            self._expect_obj(cmd.dst, rel.target, "link target")
        elif isinstance(cmd, C.RLink):
            rel = self._relation(cmd.relation)
            if not isinstance(cmd.srcs.type, SetType) or cmd.srcs.type.model != rel.source:
                self.fail(f"rlink sources must be Set<{rel.source}>")
            self._expect_obj(cmd.dst, rel.target, "rlink target")
        elif isinstance(cmd, C.ClearLinks):
            rel = self._relation(cmd.relation)
            expected = rel.source if cmd.end == "source" else rel.target
            self._expect_obj(cmd.obj, expected, "clearlinks object")

    def _relation(self, name: str):
        try:
            return self.schema.relation(name)
        except SchemaError:
            self.fail(f"unknown relation {name!r}")

    def _expect_obj(self, e: E.Expr, model: str, what: str) -> None:
        if not isinstance(e.type, ObjType) or e.type.model != model:
            self.fail(f"{what} must be Obj<{model}>, got {e.type}")

    # -- expressions ----------------------------------------------------

    def check_expr(self, e: E.Expr) -> None:
        for node in e.walk():
            self._check_node(node)

    def _check_node(self, node: E.Expr) -> None:
        if isinstance(node, E.Var):
            declared = self.arg_types.get(node.name)
            if declared is None:
                self.fail(f"undeclared variable {node.name!r}")
            if declared != node.var_type:
                self.fail(
                    f"variable {node.name!r} used at type {node.var_type}, "
                    f"declared {declared}"
                )
        elif isinstance(node, (E.All, E.Deref, E.Exists)):
            self._model(node.model)
        elif isinstance(node, E.MakeObj):
            model = self._model(node.model)
            supplied = {n for n, _ in node.fields}
            missing = set(model.field_names) - supplied
            if missing:
                self.fail(f"new<{node.model}> missing fields {sorted(missing)}")
            extra = supplied - set(model.field_names)
            if extra:
                self.fail(f"new<{node.model}> unknown fields {sorted(extra)}")
        elif isinstance(node, E.FieldGet):
            t = node.obj.type
            if not isinstance(t, ObjType):
                self.fail("field access on non-object")
            model = self._model(t.model)
            if not model.has_field(node.field):
                self.fail(f"model {t.model} has no field {node.field!r}")
        elif isinstance(node, E.MapSet):
            t = node.qs.type
            if not isinstance(t, SetType):
                self.fail("mapset on non-queryset")
            model = self._model(t.model)
            if not model.has_field(node.field):
                self.fail(f"model {t.model} has no field {node.field!r}")
        elif isinstance(node, E.SetField):
            t = node.obj.type
            if not isinstance(t, ObjType):
                self.fail("setf on non-object")
            model = self._model(t.model)
            if not model.has_field(node.field):
                self.fail(f"model {t.model} has no field {node.field!r}")
        elif isinstance(node, E.Filter):
            self._check_relpath(node.qs.type, node.relpath, node.field)
        elif isinstance(node, E.Follow):
            end = self._check_relpath(node.qs.type, node.relpath, None)
            if end != node.target_model:
                self.fail(
                    f"follow ends at {end}, annotated {node.target_model}"
                )
        elif isinstance(node, (E.OrderBy, E.Aggregate)):
            t = node.qs.type
            if not isinstance(t, SetType):
                self.fail("order/aggregate on non-queryset")
            model = self._model(t.model)
            if not model.has_field(node.field):
                self.fail(f"model {t.model} has no field {node.field!r}")

    def _model(self, name: str):
        try:
            return self.schema.model(name)
        except SchemaError:
            self.fail(f"unknown model {name!r}")

    def _check_relpath(self, qs_type, relpath, field: str | None) -> str:
        if not isinstance(qs_type, SetType):
            self.fail("filter/follow on non-queryset")
        current = qs_type.model
        for hop in relpath:
            rel = self._relation(hop.relation)
            if hop.direction == Direction.FORWARD:
                if rel.source != current:
                    self.fail(
                        f"hop {hop} expects source {rel.source}, at {current}"
                    )
                current = rel.target
            else:
                if rel.target != current:
                    self.fail(
                        f"hop {hop} expects target {rel.target}, at {current}"
                    )
                current = rel.source
        if field is not None:
            model = self._model(current)
            if not model.has_field(field):
                self.fail(f"model {current} has no field {field!r}")
        return current
