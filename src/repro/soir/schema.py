"""Schema metadata shared by the analyzer, verifier and interpreter.

A :class:`Schema` describes the persistent data model of an application at
the level SOIR cares about: which models exist, their fields (with SOIR
types and uniqueness constraints) and the relations between models.

The analyzer derives a ``Schema`` automatically from the ORM registry of the
application under analysis; the verifier consumes it to know which state
components exist and which axioms (well-formedness, unique fields, unique
order) to emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import SoirType, INT


class SchemaError(Exception):
    """Raised for malformed or inconsistent schema definitions."""


@dataclass(frozen=True)
class FieldSchema:
    """One column of a model.

    ``unique`` marks per-field uniqueness (SQL ``UNIQUE``); the primary key
    is always unique.  ``nullable`` permits the SQL ``NULL`` value, which
    SOIR models as a distinguished ``none`` literal.  ``min_value`` carries
    type refinements such as ``PositiveIntegerField`` (``min_value=0``);
    ``choices`` restricts string/int fields to a fixed set.
    """

    name: str
    type: SoirType
    unique: bool = False
    nullable: bool = False
    min_value: int | None = None
    choices: tuple | None = None


@dataclass(frozen=True)
class RelationSchema:
    """A named relation between two models.

    ``kind`` is ``"fk"`` (many-to-one; every source object is associated
    with at most one target) or ``"m2m"`` (many-to-many).  ``on_delete``
    describes the referential action the application configured for the
    relation: ``"cascade"``, ``"set_null"``, ``"protect"`` or ``"do_nothing"``.
    ``reverse_name`` is the automatically created reversal related key on the
    target model (e.g. ``article_set``).
    """

    name: str
    source: str
    target: str
    kind: str = "fk"
    on_delete: str = "cascade"
    reverse_name: str = ""
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("fk", "m2m"):
            raise SchemaError(f"unknown relation kind {self.kind!r}")
        if self.on_delete not in ("cascade", "set_null", "protect", "do_nothing"):
            raise SchemaError(f"unknown on_delete action {self.on_delete!r}")


@dataclass(frozen=True)
class ModelSchema:
    """A model: a named record type whose instances persist in the database.

    ``pk`` names the primary-key field; it must be listed in ``fields``.
    ``unique_together`` is a tuple of field-name tuples, each demanding
    joint uniqueness (Django's ``unique_together`` Meta option).
    ``auto_pk`` means the storage tier assigns globally-unique fresh IDs on
    insert, which enables the verifier's unique-ID optimisation (paper §5.2).
    """

    name: str
    fields: tuple[FieldSchema, ...]
    pk: str = "id"
    unique_together: tuple[tuple[str, ...], ...] = ()
    auto_pk: bool = True

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in model {self.name}")
        if self.pk not in names:
            raise SchemaError(f"model {self.name} lacks its pk field {self.pk!r}")
        for group in self.unique_together:
            for fname in group:
                if fname not in names:
                    raise SchemaError(
                        f"unique_together of {self.name} names unknown field {fname!r}"
                    )

    def field(self, name: str) -> FieldSchema:
        for f in self.fields:
            if f.name == name:
                return f
        raise SchemaError(f"model {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    @property
    def pk_field(self) -> FieldSchema:
        return self.field(self.pk)

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)


@dataclass
class Schema:
    """The full persistent schema of an application."""

    models: dict[str, ModelSchema] = field(default_factory=dict)
    relations: dict[str, RelationSchema] = field(default_factory=dict)

    def add_model(self, model: ModelSchema) -> None:
        if model.name in self.models:
            raise SchemaError(f"model {model.name} defined twice")
        self.models[model.name] = model

    def add_relation(self, rel: RelationSchema) -> None:
        if rel.name in self.relations:
            raise SchemaError(f"relation {rel.name} defined twice")
        self.relations[rel.name] = rel

    def model(self, name: str) -> ModelSchema:
        try:
            return self.models[name]
        except KeyError:
            raise SchemaError(f"unknown model {name!r}") from None

    def relation(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def relations_of(self, model_name: str) -> list[RelationSchema]:
        """All relations in which ``model_name`` participates."""
        return [
            r
            for r in self.relations.values()
            if r.source == model_name or r.target == model_name
        ]

    def validate(self) -> None:
        """Check cross-references between models and relations."""
        for rel in self.relations.values():
            if rel.source not in self.models:
                raise SchemaError(
                    f"relation {rel.name} has unknown source model {rel.source}"
                )
            if rel.target not in self.models:
                raise SchemaError(
                    f"relation {rel.name} has unknown target model {rel.target}"
                )

    def stats(self) -> dict[str, int]:
        """Summary statistics reported in the paper's Table 4."""
        return {"models": len(self.models), "relations": len(self.relations)}


def make_model(
    name: str,
    fields: dict[str, SoirType],
    *,
    pk: str = "id",
    unique: tuple[str, ...] = (),
    nullable: tuple[str, ...] = (),
    unique_together: tuple[tuple[str, ...], ...] = (),
    auto_pk: bool = True,
) -> ModelSchema:
    """Convenience constructor used by tests and hand-written specs.

    Adds an ``id: Int`` primary key automatically when ``pk`` is ``"id"``
    and no ``id`` field is supplied.
    """
    all_fields = dict(fields)
    if pk == "id" and "id" not in all_fields:
        all_fields = {"id": INT, **all_fields}
    fschemas = tuple(
        FieldSchema(
            fname,
            ftype,
            unique=(fname in unique or fname == pk),
            nullable=fname in nullable,
        )
        for fname, ftype in all_fields.items()
    )
    return ModelSchema(
        name=name,
        fields=fschemas,
        pk=pk,
        unique_together=unique_together,
        auto_pk=auto_pk,
    )
