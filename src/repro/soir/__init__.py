"""SOIR — the SMT-verifiable Object Intermediate Representation.

SOIR models the database interactions of one application code path: a list
of arguments, path conditions (guards) and state-mutating commands over an
ORM-shaped data model (paper Section 3).

Public surface:

* :mod:`repro.soir.types` — the type system and static enums;
* :mod:`repro.soir.schema` — model / relation metadata;
* :mod:`repro.soir.expr` — expression AST;
* :mod:`repro.soir.commands` — command AST;
* :mod:`repro.soir.path` — :class:`CodePath` and :class:`AnalysisResult`;
* :mod:`repro.soir.pretty` — stable pretty-printer;
* :mod:`repro.soir.validate` — well-formedness validation;
* :mod:`repro.soir.interp` — the reference concrete interpreter;
* :mod:`repro.soir.state` — concrete database states.
"""

from . import commands, expr, types
from .path import AnalysisResult, Argument, CodePath
from .pretty import pp_command, pp_expr, pp_path
from .schema import (
    FieldSchema,
    ModelSchema,
    RelationSchema,
    Schema,
    SchemaError,
    make_model,
)
from .state import DBState, ObjVal, QuerySetVal
from .interp import Outcome, run_path, precondition_holds
from . import serialize
from .validate import ValidationError, validate_path, validate_result

__all__ = [
    "AnalysisResult",
    "Argument",
    "CodePath",
    "DBState",
    "FieldSchema",
    "ModelSchema",
    "ObjVal",
    "Outcome",
    "QuerySetVal",
    "RelationSchema",
    "Schema",
    "SchemaError",
    "ValidationError",
    "commands",
    "expr",
    "make_model",
    "pp_command",
    "pp_expr",
    "pp_path",
    "precondition_holds",
    "run_path",
    "serialize",
    "types",
    "validate_path",
    "validate_result",
]
