"""SOIR expressions.

Expressions model local computations and database *queries* — evaluations
that never change the replicated database state (paper §3.1.2).  They are
built from literals, path arguments, conventional operations (arithmetic,
comparison, boolean connectives, string concatenation) and the ORM query
primitives (``all``, ``filter``, ``follow``, ``orderby``, ``aggregate``,
conversions between objects / query sets / references).

Every node is an immutable, hashable dataclass.  Structural sharing is used
freely; rewriting goes through :meth:`Expr.children` and
:meth:`Expr.with_children`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Iterator

from .types import (
    BOOL,
    INT,
    FLOAT,
    STRING,
    Aggregation,
    Comparator,
    DRelation,
    ObjType,
    Order,
    RefType,
    SetType,
    SoirType,
)


class SoirTypeError(Exception):
    """Raised when an expression is built from ill-typed parts."""


@dataclass(frozen=True)
class Expr:
    """Base class of all SOIR expressions."""

    # Names of dataclass fields that hold sub-expressions, in order.
    _child_fields: ClassVar[tuple[str, ...]] = ()

    @property
    def type(self) -> SoirType:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return tuple(getattr(self, name) for name in self._child_fields)

    def with_children(self, new_children: tuple["Expr", ...]) -> "Expr":
        if len(new_children) != len(self._child_fields):
            raise ValueError("child arity mismatch")
        return dataclasses.replace(
            self, **dict(zip(self._child_fields, new_children))
        )

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


def _children(*names: str) -> tuple[str, ...]:
    """Helper naming the sub-expression fields of a node class."""
    return tuple(names)


# ---------------------------------------------------------------------------
# Literals and variables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lit(Expr):
    """A constant of a scalar type.

    ``value`` holds the Python representation: ``bool``, ``int``, ``float``
    or ``str``.  Datetimes are represented as integer timestamps.
    """

    value: object
    lit_type: SoirType

    @property
    def type(self) -> SoirType:
        return self.lit_type


@dataclass(frozen=True)
class NoneLit(Expr):
    """SQL ``NULL`` at a given type (used for nullable fields and refs)."""

    none_type: SoirType

    @property
    def type(self) -> SoirType:
        return self.none_type


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a code-path argument or a bound symbolic value."""

    name: str
    var_type: SoirType

    @property
    def type(self) -> SoirType:
        return self.var_type


@dataclass(frozen=True)
class Opaque(Expr):
    """An unknown value of a known type.

    Produced when the analyzer meets semantics it cannot translate and
    falls back to a conservative over-approximation (paper §3.3).  Two
    ``Opaque`` nodes with different ``name`` are unrelated unknowns.
    """

    name: str
    opaque_type: SoirType
    deps: tuple[Expr, ...] = ()

    @property
    def type(self) -> SoirType:
        return self.opaque_type

    def children(self) -> tuple[Expr, ...]:
        return self.deps

    def with_children(self, new_children: tuple[Expr, ...]) -> "Opaque":
        return dataclasses.replace(self, deps=tuple(new_children))


# ---------------------------------------------------------------------------
# Scalar operations
# ---------------------------------------------------------------------------

_ARITH_OPS = ("+", "-", "*", "/", "%", "concat")


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic or string concatenation.  Result type follows ``left``."""

    op: str
    left: Expr
    right: Expr
    _child_fields = _children("left", "right")

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise SoirTypeError(f"unknown binary operator {self.op!r}")

    @property
    def type(self) -> SoirType:
        if self.op == "concat":
            return STRING
        # Evaluate each child type exactly once: type computation recurses
        # through the chain, and a second evaluation per level would make
        # deep arithmetic chains exponential.
        left_type = self.left.type
        if left_type == FLOAT or self.right.type == FLOAT:
            return FLOAT
        return left_type


@dataclass(frozen=True)
class Neg(Expr):
    """Arithmetic negation."""

    operand: Expr
    _child_fields = _children("operand")

    @property
    def type(self) -> SoirType:
        return self.operand.type


@dataclass(frozen=True)
class Cmp(Expr):
    """A comparison; always boolean-valued."""

    op: Comparator
    left: Expr
    right: Expr
    _child_fields = _children("left", "right")

    @property
    def type(self) -> SoirType:
        return BOOL


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr
    _child_fields = _children("operand")

    @property
    def type(self) -> SoirType:
        return BOOL


@dataclass(frozen=True)
class And(Expr):
    args: tuple[Expr, ...]

    @property
    def type(self) -> SoirType:
        return BOOL

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def with_children(self, new_children: tuple[Expr, ...]) -> "And":
        return And(tuple(new_children))


@dataclass(frozen=True)
class Or(Expr):
    args: tuple[Expr, ...]

    @property
    def type(self) -> SoirType:
        return BOOL

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def with_children(self, new_children: tuple[Expr, ...]) -> "Or":
        return Or(tuple(new_children))


@dataclass(frozen=True)
class Ite(Expr):
    """``if cond then then_ else else_`` — both branches share a type."""

    cond: Expr
    then_: Expr
    else_: Expr
    _child_fields = _children("cond", "then_", "else_")

    @property
    def type(self) -> SoirType:
        return self.then_.type


# ---------------------------------------------------------------------------
# Objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldGet(Expr):
    """``o.f`` — retrieve field ``field`` of an object."""

    obj: Expr
    field: str
    field_type: SoirType
    _child_fields = _children("obj")

    @property
    def type(self) -> SoirType:
        return self.field_type


@dataclass(frozen=True)
class SetField(Expr):
    """``setf(f, v, o)`` — a copy of ``o`` with field ``f`` set to ``v``.

    Values are immutable in SOIR, so mutation is modelled functionally.
    """

    field: str
    value: Expr
    obj: Expr
    _child_fields = _children("value", "obj")

    @property
    def type(self) -> SoirType:
        return self.obj.type


@dataclass(frozen=True)
class MakeObj(Expr):
    """Construct a fresh object of ``model`` with the given field values.

    Fields are a tuple of ``(name, expr)`` pairs; the analyzer guarantees
    every model field is present (defaulted fields get literal defaults,
    the primary key gets a fresh-ID argument).
    """

    model: str
    fields: tuple[tuple[str, Expr], ...]

    @property
    def type(self) -> SoirType:
        return ObjType(self.model)

    def children(self) -> tuple[Expr, ...]:
        return tuple(e for _, e in self.fields)

    def with_children(self, new_children: tuple[Expr, ...]) -> "MakeObj":
        names = tuple(n for n, _ in self.fields)
        return MakeObj(self.model, tuple(zip(names, new_children)))

    def field_expr(self, name: str) -> Expr:
        for fname, fexpr in self.fields:
            if fname == name:
                return fexpr
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Conversions between objects, references and query sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MapSet(Expr):
    """A copy of ``qs`` with every object's ``field`` set to ``value``.

    ``value`` is a single expression that cannot depend on the individual
    object (SOIR has no closures, §3.3) — exactly the expressive power of
    SQL's ``UPDATE ... SET field = value`` and Django's
    ``queryset.update(field=value)`` for scalar columns.
    """

    qs: Expr
    field: str
    value: Expr
    _child_fields = _children("qs", "value")

    @property
    def type(self) -> SoirType:
        return self.qs.type


@dataclass(frozen=True)
class Singleton(Expr):
    """Wrap an object into a one-element query set."""

    obj: Expr
    _child_fields = _children("obj")

    @property
    def type(self) -> SoirType:
        t = self.obj.type
        if not isinstance(t, ObjType):
            raise SoirTypeError(f"singleton of non-object {t}")
        return SetType(t.model_name)


@dataclass(frozen=True)
class Deref(Expr):
    """Convert a reference to its full object (must exist; guard separately)."""

    ref: Expr
    model: str
    _child_fields = _children("ref")

    @property
    def type(self) -> SoirType:
        return ObjType(self.model)


@dataclass(frozen=True)
class RefOf(Expr):
    """The primary key (reference) of an object."""

    obj: Expr
    _child_fields = _children("obj")

    @property
    def type(self) -> SoirType:
        t = self.obj.type
        if not isinstance(t, ObjType):
            raise SoirTypeError(f"ref of non-object {t}")
        return RefType(t.model_name)


@dataclass(frozen=True)
class AnyOf(Expr):
    """``any(qs)`` — an arbitrary object from a query set (must be non-empty)."""

    qs: Expr
    _child_fields = _children("qs")

    @property
    def type(self) -> SoirType:
        t = self.qs.type
        if not isinstance(t, SetType):
            raise SoirTypeError(f"any of non-set {t}")
        return ObjType(t.model_name)


# ---------------------------------------------------------------------------
# Query primitives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class All(Expr):
    """``all<mu>()`` — the current state of model ``model``."""

    model: str

    @property
    def type(self) -> SoirType:
        return SetType(self.model)


@dataclass(frozen=True)
class Filter(Expr):
    """``filter<mu, rs, fld, op>(val, qs)``.

    Selects the subset of ``qs`` whose objects, after following the
    (possibly empty) relation path ``relpath``, have a related object whose
    field ``field`` compares ``op`` against ``value``.  With an empty
    ``relpath`` this is a plain column filter.
    """

    qs: Expr
    relpath: tuple[DRelation, ...]
    field: str
    op: Comparator
    value: Expr
    _child_fields = _children("qs", "value")

    @property
    def type(self) -> SoirType:
        return self.qs.type


@dataclass(frozen=True)
class Follow(Expr):
    """``follow<mu, rs>(qs)`` — successively follow relations in ``relpath``.

    ``target_model`` is the model reached after the final hop (statically
    known from the schema)."""

    qs: Expr
    relpath: tuple[DRelation, ...]
    target_model: str
    _child_fields = _children("qs")

    @property
    def type(self) -> SoirType:
        return SetType(self.target_model)


@dataclass(frozen=True)
class OrderBy(Expr):
    """Reorder ``qs`` by ``field`` ascending/descending."""

    qs: Expr
    field: str
    order: Order
    _child_fields = _children("qs")

    @property
    def type(self) -> SoirType:
        return self.qs.type


@dataclass(frozen=True)
class ReverseSet(Expr):
    """Reverse the order of a query set."""

    qs: Expr
    _child_fields = _children("qs")

    @property
    def type(self) -> SoirType:
        return self.qs.type


@dataclass(frozen=True)
class FirstOf(Expr):
    """The least-ordered object of a query set (must be non-empty)."""

    qs: Expr
    _child_fields = _children("qs")

    @property
    def type(self) -> SoirType:
        t = self.qs.type
        if not isinstance(t, SetType):
            raise SoirTypeError(f"first of non-set {t}")
        return ObjType(t.model_name)


@dataclass(frozen=True)
class LastOf(Expr):
    """The greatest-ordered object of a query set (must be non-empty)."""

    qs: Expr
    _child_fields = _children("qs")

    @property
    def type(self) -> SoirType:
        t = self.qs.type
        if not isinstance(t, SetType):
            raise SoirTypeError(f"last of non-set {t}")
        return ObjType(t.model_name)


@dataclass(frozen=True)
class Aggregate(Expr):
    """``aggregate<mu, ag, fld>(qs)`` — max/min/sum/cnt/avg over a field."""

    qs: Expr
    agg: Aggregation
    field: str
    result_type: SoirType
    _child_fields = _children("qs")

    @property
    def type(self) -> SoirType:
        return self.result_type


@dataclass(frozen=True)
class IsEmpty(Expr):
    """Whether a query set contains no objects."""

    qs: Expr
    _child_fields = _children("qs")

    @property
    def type(self) -> SoirType:
        return BOOL


@dataclass(frozen=True)
class Exists(Expr):
    """``exists<mu>(ref)`` — whether an object with this primary key exists."""

    model: str
    ref: Expr
    _child_fields = _children("ref")

    @property
    def type(self) -> SoirType:
        return BOOL


@dataclass(frozen=True)
class MemberOf(Expr):
    """Whether object ``obj`` is a member of query set ``qs`` (by ID)."""

    obj: Expr
    qs: Expr
    _child_fields = _children("obj", "qs")

    @property
    def type(self) -> SoirType:
        return BOOL


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def true() -> Lit:
    return Lit(True, BOOL)


def false() -> Lit:
    return Lit(False, BOOL)


def intlit(v: int) -> Lit:
    return Lit(int(v), INT)


def floatlit(v: float) -> Lit:
    return Lit(float(v), FLOAT)


def strlit(v: str) -> Lit:
    return Lit(str(v), STRING)


def conj(*parts: Expr) -> Expr:
    """N-ary conjunction, flattening and dropping literal ``true``."""
    flat: list[Expr] = []
    for p in parts:
        if isinstance(p, And):
            flat.extend(p.args)
        elif isinstance(p, Lit) and p.value is True:
            continue
        else:
            flat.append(p)
    if not flat:
        return true()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Expr) -> Expr:
    """N-ary disjunction, flattening and dropping literal ``false``."""
    flat: list[Expr] = []
    for p in parts:
        if isinstance(p, Or):
            flat.extend(p.args)
        elif isinstance(p, Lit) and p.value is False:
            continue
        else:
            flat.append(p)
    if not flat:
        return false()
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def eq(left: Expr, right: Expr) -> Cmp:
    return Cmp(Comparator.EQ, left, right)


def models_used(e: Expr) -> set[str]:
    """The set of model names an expression reads from."""
    out: set[str] = set()
    for node in e.walk():
        t = node.type
        if t.is_model_type():
            out.add(t.model)
        if isinstance(node, (Filter, Follow)):
            # Relation hops read intermediate models too; recorded lazily by
            # the caller using the schema.  Here we record endpoint models.
            pass
    return out
