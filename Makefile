# Convenience targets for the Noctua reproduction.

PYTHON ?= python3

.PHONY: install test test-fast coverage bench bench-full bench-sweep \
	bench-gate examples chaos engine-chaos difftest difftest-directed \
	trace-demo metrics-demo serve-demo docs-lint clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

coverage:
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing

difftest:
	$(PYTHON) -m repro difftest --seeds 50 --timeout 4
	$(PYTHON) -m repro difftest --replay

# Slow: the full acceptance sweep — directed pair walk at the 300-eval
# budget, a k=3 DPOR schedule sweep, and the directed-vs-random A/B
# benchmark (asserts directed strictly wins and pruning stays <= 50%).
difftest-directed:
	$(PYTHON) -m repro difftest --directed --seeds 5 --budget 300 --shrink
	$(PYTHON) -m repro difftest --directed --seeds 5 --budget 200 --k 3 --shrink
	$(PYTHON) benchmarks/bench_directed_ab.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-sweep:
	$(PYTHON) benchmarks/bench_pair_sweep.py --jobs 4
	$(PYTHON) tools/bench_gate.py

bench-gate:
	$(PYTHON) tools/bench_gate.py

chaos:
	$(PYTHON) -m repro chaos postgraduation --seed 3 --ops 200
	$(PYTHON) -m repro chaos smallbank --seed 1 --ops 120 --faults all

engine-chaos:
	$(PYTHON) -m repro engine-chaos --seeds 5 --jobs 2

trace-demo:
	$(PYTHON) -m repro trace courseware --quick --jobs 2 \
		--out trace-demo.jsonl
	$(PYTHON) tools/check_trace.py trace-demo.jsonl

metrics-demo:
	$(PYTHON) -m repro metrics courseware --quick --jobs 2 \
		--out metrics-demo.json --out metrics-demo.prom
	$(PYTHON) tools/check_metrics.py metrics-demo.prom metrics-demo.json

serve-demo:
	$(PYTHON) tools/serve_smoke.py

docs-lint:
	$(PYTHON) tools/docs_lint.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/banking_invariants.py
	$(PYTHON) examples/analyze_custom_app.py
	$(PYTHON) examples/replication_necessity.py
	$(PYTHON) examples/geo_replication_performance.py

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
