# Convenience targets for the Noctua reproduction.

PYTHON ?= python3

.PHONY: install test bench bench-full examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/banking_invariants.py
	$(PYTHON) examples/analyze_custom_app.py
	$(PYTHON) examples/replication_necessity.py
	$(PYTHON) examples/geo_replication_performance.py

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
